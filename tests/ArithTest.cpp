//===- tests/ArithTest.cpp - arith layer unit tests ------------*- C++ -*-===//

#include "arith/Formula.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

// Intern in a fixed order so VarId-keyed term printing is deterministic
// regardless of argument evaluation order inside the tests.
struct InternOrder {
  InternOrder() {
    mkVar("x");
    mkVar("y");
    mkVar("z");
  }
} GInternOrder;

VarId X() { return mkVar("x"); }
VarId Y() { return mkVar("y"); }
VarId Z() { return mkVar("z"); }

LinExpr ex(VarId V) { return LinExpr::var(V); }

} // namespace

//===----------------------------------------------------------------------===//
// VarPool
//===----------------------------------------------------------------------===//

TEST(VarPool, InternIsIdempotent) {
  EXPECT_EQ(mkVar("same"), mkVar("same"));
  EXPECT_NE(mkVar("a1"), mkVar("a2"));
}

TEST(VarPool, FreshNeverCollides) {
  VarId A = freshVar("tmp");
  VarId B = freshVar("tmp");
  EXPECT_NE(A, B);
  EXPECT_NE(varName(A), varName(B));
  // Fresh names use '!' which the parser rejects in identifiers.
  EXPECT_NE(varName(A).find('!'), std::string::npos);
}

//===----------------------------------------------------------------------===//
// LinExpr
//===----------------------------------------------------------------------===//

TEST(LinExpr, Algebra) {
  LinExpr E = ex(X()) * 2 + ex(Y()) - LinExpr(3);
  EXPECT_EQ(E.coeff(X()), 2);
  EXPECT_EQ(E.coeff(Y()), 1);
  EXPECT_EQ(E.coeff(Z()), 0);
  EXPECT_EQ(E.constant(), -3);

  LinExpr Zero = E - E;
  EXPECT_TRUE(Zero.isZero());
  EXPECT_TRUE((E * 0).isZero());
}

TEST(LinExpr, SparseInvariant) {
  LinExpr E = ex(X()) + ex(Y());
  E = E - ex(Y());
  EXPECT_FALSE(E.mentions(Y()));
  EXPECT_TRUE(E.mentions(X()));
}

TEST(LinExpr, Substitute) {
  // (2x + y) [x := y + 1] == 3y + 2.
  LinExpr E = ex(X()) * 2 + ex(Y());
  LinExpr S = E.substitute(X(), ex(Y()) + 1);
  EXPECT_EQ(S.coeff(Y()), 3);
  EXPECT_EQ(S.constant(), 2);
  EXPECT_FALSE(S.mentions(X()));
}

TEST(LinExpr, SubstituteAbsent) {
  LinExpr E = ex(Y()) * 5;
  EXPECT_EQ(E.substitute(X(), LinExpr(42)), E);
}

TEST(LinExpr, RenameSwallowsCollisions) {
  // x + y with y -> x gives 2x.
  LinExpr E = ex(X()) + ex(Y());
  std::map<VarId, VarId> R{{Y(), X()}};
  LinExpr Out = E.rename(R);
  EXPECT_EQ(Out.coeff(X()), 2);
  EXPECT_FALSE(Out.mentions(Y()));
}

TEST(LinExpr, EvalAndGcd) {
  LinExpr E = ex(X()) * 4 + ex(Y()) * 6 - 2;
  EXPECT_EQ(E.coeffGcd(), 2);
  std::map<VarId, int64_t> M{{X(), 1}, {Y(), 2}};
  EXPECT_EQ(E.eval(M), 4 + 12 - 2);
}

TEST(LinExpr, Str) {
  EXPECT_EQ((ex(X()) * 2 - ex(Y()) + 1).str(), "2*x - y + 1");
  EXPECT_EQ(LinExpr(0).str(), "0");
  EXPECT_EQ((-ex(X())).str(), "-x");
}

//===----------------------------------------------------------------------===//
// Constraint
//===----------------------------------------------------------------------===//

TEST(Constraint, StrictTightening) {
  // x < y over Z becomes x - y + 1 <= 0.
  Constraint C = Constraint::make(ex(X()), CmpKind::Lt, ex(Y()));
  EXPECT_TRUE(C.isLe());
  EXPECT_EQ(C.expr().coeff(X()), 1);
  EXPECT_EQ(C.expr().coeff(Y()), -1);
  EXPECT_EQ(C.expr().constant(), 1);
}

TEST(Constraint, GeGtNormalization) {
  Constraint Ge = Constraint::make(ex(X()), CmpKind::Ge, LinExpr(0));
  EXPECT_TRUE(Ge.isLe());
  EXPECT_EQ(Ge.expr().coeff(X()), -1);

  Constraint Gt = Constraint::make(ex(X()), CmpKind::Gt, LinExpr(0));
  EXPECT_EQ(Gt.expr().constant(), 1); // -x + 1 <= 0.
}

TEST(Constraint, ConstantTruth) {
  EXPECT_EQ(Constraint::make(LinExpr(1), CmpKind::Le, LinExpr(2))
                .constantTruth()
                .value(),
            true);
  EXPECT_EQ(Constraint::make(LinExpr(3), CmpKind::Eq, LinExpr(2))
                .constantTruth()
                .value(),
            false);
  EXPECT_FALSE(
      Constraint::make(ex(X()), CmpKind::Le, LinExpr(2)).constantTruth());
}

TEST(Constraint, NormalizedGcdTightening) {
  // 2x <= 1 tightens to x <= 0.
  Constraint C = Constraint::make(ex(X()) * 2, CmpKind::Le, LinExpr(1));
  Constraint N = C.normalized().value();
  EXPECT_EQ(N.expr().coeff(X()), 1);
  EXPECT_EQ(N.expr().constant(), 0);
}

TEST(Constraint, NormalizedGcdRefutesEquality) {
  // 2x = 1 has no integer solution.
  Constraint C = Constraint::make(ex(X()) * 2, CmpKind::Eq, LinExpr(1));
  EXPECT_FALSE(C.normalized().has_value());
}

TEST(Constraint, Negation) {
  Constraint Le = Constraint::make(ex(X()), CmpKind::Le, LinExpr(5));
  std::vector<Constraint> Neg = Le.negated();
  ASSERT_EQ(Neg.size(), 1u);
  // !(x <= 5) == x >= 6 == -x + 6 <= 0.
  EXPECT_EQ(Neg[0].expr().coeff(X()), -1);
  EXPECT_EQ(Neg[0].expr().constant(), 6);

  Constraint Eq = Constraint::make(ex(X()), CmpKind::Eq, LinExpr(0));
  EXPECT_TRUE(Eq.negated()[0].isNe());
}

TEST(Constraint, Eval) {
  Constraint C = Constraint::make(ex(X()) + ex(Y()), CmpKind::Le, LinExpr(3));
  EXPECT_TRUE(C.eval({{X(), 1}, {Y(), 2}}));
  EXPECT_FALSE(C.eval({{X(), 2}, {Y(), 2}}));
}

//===----------------------------------------------------------------------===//
// Formula
//===----------------------------------------------------------------------===//

TEST(Formula, ConstantFolding) {
  Formula T = Formula::top();
  Formula F = Formula::bottom();
  EXPECT_TRUE(Formula::conj2(T, F).isBottom());
  EXPECT_TRUE(Formula::disj2(T, F).isTop());
  EXPECT_TRUE(Formula::neg(T).isBottom());
  EXPECT_TRUE(Formula::conj({}).isTop());
  EXPECT_TRUE(Formula::disj({}).isBottom());
}

TEST(Formula, AtomConstantFolds) {
  Formula F = Formula::cmp(LinExpr(1), CmpKind::Le, LinExpr(0));
  EXPECT_TRUE(F.isBottom());
  Formula T = Formula::cmp(LinExpr(0), CmpKind::Le, LinExpr(0));
  EXPECT_TRUE(T.isTop());
}

TEST(Formula, FlattensNestedConnectives) {
  Formula A = Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0));
  Formula B = Formula::cmp(ex(Y()), CmpKind::Le, LinExpr(0));
  Formula C = Formula::cmp(ex(Z()), CmpKind::Le, LinExpr(0));
  Formula F = Formula::conj2(A, Formula::conj2(B, C));
  EXPECT_EQ(F.node()->Children.size(), 3u);
}

TEST(Formula, FreeVars) {
  Formula F = Formula::conj2(Formula::cmp(ex(X()), CmpKind::Le, ex(Y())),
                             Formula::cmp(ex(Z()), CmpKind::Eq, LinExpr(0)));
  std::set<VarId> Free = F.freeVars();
  EXPECT_EQ(Free.size(), 3u);
  EXPECT_TRUE(Free.count(X()));

  Formula Ex = Formula::exists({Z()}, F);
  Free = Ex.freeVars();
  EXPECT_EQ(Free.size(), 2u);
  EXPECT_FALSE(Free.count(Z()));
}

TEST(Formula, ExistsOverAbsentVarIsDropped) {
  Formula F = Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0));
  Formula Ex = Formula::exists({Y()}, F);
  EXPECT_TRUE(Ex.structEq(F));
}

TEST(Formula, SubstituteShadowing) {
  // (exists x . x <= y)[x := 5] leaves the bound x alone.
  Formula Body = Formula::cmp(ex(X()), CmpKind::Le, ex(Y()));
  Formula Ex = Formula::exists({X()}, Body);
  Formula S = Ex.substitute(X(), LinExpr(5));
  EXPECT_TRUE(S.structEq(Ex));
}

TEST(Formula, SubstituteCaptureAvoidance) {
  // (exists x . x <= y)[y := x] must NOT capture: result is
  // exists x' . x' <= x.
  Formula Body = Formula::cmp(ex(X()), CmpKind::Le, ex(Y()));
  Formula Ex = Formula::exists({X()}, Body);
  Formula S = Ex.substitute(Y(), ex(X()));
  std::set<VarId> Free = S.freeVars();
  EXPECT_EQ(Free.size(), 1u);
  EXPECT_TRUE(Free.count(X()));
  // Semantically: for x = anything, exists x' with x' <= x: true.
  EXPECT_TRUE(S.eval({{X(), 0}}));
}

TEST(Formula, RenameTargetCollidingWithBinderFreshensBinder) {
  // rename x -> b in (exists b . x < b): erasing bound variables from
  // the renaming *domain* is not enough — the *target* b would be
  // captured, yielding the unsatisfiable (exists b . b < b). The
  // colliding binder must be freshened instead.
  VarId B = mkVar("cap_b");
  Formula Ex =
      Formula::exists({B}, Formula::cmp(ex(X()), CmpKind::Lt, LinExpr::var(B)));
  Formula S = Ex.rename({{X(), B}});
  std::set<VarId> Free = S.freeVars();
  ASSERT_EQ(Free.size(), 1u);
  EXPECT_TRUE(Free.count(B));
  // Semantically: exists b' . b < b' holds for every b.
  EXPECT_TRUE(S.eval({{B, 0}}));
  EXPECT_TRUE(S.eval({{B, 7}}));
}

TEST(Formula, RenameSourceNotFreeLeavesNodeAlone) {
  // x is not free under the quantifier, so renaming it is a no-op and
  // must not freshen the binder it targets.
  VarId B = mkVar("cap_b2");
  Formula Ex =
      Formula::exists({B}, Formula::cmp(ex(Y()), CmpKind::Le, LinExpr::var(B)));
  Formula S = Ex.rename({{X(), B}});
  EXPECT_EQ(S.node(), Ex.node());
}

TEST(Formula, SubstParallelSwapUnderExists) {
  // (exists z . x < z && z < y)[x := y, y := x] swaps the bounds.
  VarId Zv = mkVar("sp_z");
  Formula F = Formula::exists(
      {Zv}, Formula::conj2(Formula::cmp(ex(X()), CmpKind::Lt, LinExpr::var(Zv)),
                           Formula::cmp(LinExpr::var(Zv), CmpKind::Lt,
                                        ex(Y()))));
  Formula S = substParallelFormula(F, {X(), Y()}, {ex(Y()), ex(X())});
  EXPECT_TRUE(S.eval({{X(), 2}, {Y(), 0}}));  // exists z in (0, 2)
  EXPECT_FALSE(S.eval({{X(), 0}, {Y(), 2}})); // empty interval (2, 0)
}

TEST(Formula, SubstParallelArgMentioningBinderAvoidsCapture) {
  // (exists b . x <= b)[x := b] must keep the argument's b free.
  VarId B = mkVar("sp_b");
  Formula F =
      Formula::exists({B}, Formula::cmp(ex(X()), CmpKind::Le, LinExpr::var(B)));
  Formula S = substParallelFormula(F, {X()}, {LinExpr::var(B)});
  std::set<VarId> Free = S.freeVars();
  ASSERT_EQ(Free.size(), 1u);
  EXPECT_TRUE(Free.count(B));
  // exists b' . b <= b' holds for every b.
  EXPECT_TRUE(S.eval({{B, 5}}));
}

TEST(Formula, EvalExistsSupportsManyBoundVars) {
  // Three binders: beyond the old two-variable limit, whose guarding
  // assert compiled out under NDEBUG and left variables unassigned.
  VarId A = mkVar("ev_a"), B = mkVar("ev_b"), C = mkVar("ev_c");
  Formula F = Formula::exists(
      {A, B, C},
      Formula::cmp(LinExpr::var(A) + LinExpr::var(B) + LinExpr::var(C),
                   CmpKind::Eq, ex(X())));
  EXPECT_TRUE(F.eval({{X(), 3}}));
  Formula Unsat = Formula::exists(
      {A, B, C},
      Formula::conj2(
          Formula::cmp(LinExpr::var(A) + LinExpr::var(B), CmpKind::Ge,
                       LinExpr::var(C) + 1),
          Formula::cmp(LinExpr::var(C), CmpKind::Ge,
                       LinExpr::var(A) + LinExpr::var(B))));
  EXPECT_FALSE(Unsat.eval({}));
}

TEST(Formula, EvalExistsWindowCentersOnAssignedValues) {
  // exists b . b = x with x = 1000: the witness is near the assigned
  // value, far outside the +-8 window around 0 the old search used.
  VarId B = mkVar("ev_big");
  Formula F = Formula::exists(
      {B}, Formula::cmp(LinExpr::var(B), CmpKind::Eq, ex(X())));
  EXPECT_TRUE(F.eval({{X(), 1000}}));
  EXPECT_TRUE(F.eval({{X(), -1000}}));
}

TEST(Formula, NegatedExistentialRefusesDnf) {
  // not (exists b . x < b) is a universal: outside the DNF fragment.
  // The old path asserted in debug and mis-expanded the universal as
  // an existential under NDEBUG; now toDNF conservatively refuses.
  VarId B = mkVar("neg_b");
  Formula Ex =
      Formula::exists({B}, Formula::cmp(ex(X()), CmpKind::Lt, LinExpr::var(B)));
  EXPECT_FALSE(Formula::neg(Ex).toDNF().has_value());
}

TEST(Formula, InterningSharesStructurallyEqualNodes) {
  Formula A = Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0));
  Formula B = Formula::cmp(ex(Y()), CmpKind::Ge, LinExpr(2));
  // Commutative canonicalization: both orders intern to one node, and
  // structEq degenerates to the pointer compare.
  Formula F1 = Formula::conj2(A, B);
  Formula F2 = Formula::conj2(B, A);
  EXPECT_EQ(F1.node(), F2.node());
  EXPECT_TRUE(F1.structEq(F2));
  Formula G1 = Formula::disj2(F1, Formula::neg(A));
  Formula G2 = Formula::disj2(Formula::neg(A), F2);
  EXPECT_EQ(G1.node(), G2.node());
  // Duplicate children collapse (idempotence).
  EXPECT_EQ(Formula::conj2(A, A).node(), A.node());
  // Distinct formulas stay distinct.
  EXPECT_NE(F1.node(), G1.node());
  EXPECT_FALSE(F1.structEq(G1));
}

TEST(Formula, InterningCanonicalizesBinderOrder) {
  Formula Body = Formula::cmp(ex(X()) + ex(Y()), CmpKind::Le, ex(Z()));
  EXPECT_EQ(Formula::exists({X(), Y()}, Body).node(),
            Formula::exists({Y(), X(), Y()}, Body).node());
}

TEST(Formula, EvalPropositional) {
  Formula F = Formula::disj2(
      Formula::cmp(ex(X()), CmpKind::Eq, LinExpr(1)),
      Formula::neg(Formula::cmp(ex(Y()), CmpKind::Le, LinExpr(0))));
  EXPECT_TRUE(F.eval({{X(), 1}, {Y(), 0}}));
  EXPECT_TRUE(F.eval({{X(), 0}, {Y(), 5}}));
  EXPECT_FALSE(F.eval({{X(), 0}, {Y(), 0}}));
}

TEST(Formula, NNFEliminatesNot) {
  Formula F = Formula::neg(Formula::conj2(
      Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0)),
      Formula::neg(Formula::cmp(ex(Y()), CmpKind::Eq, LinExpr(0)))));
  Formula N = F.toNNF();
  // !(x<=0 && y!=0) == x>=1 || y==0.
  std::function<bool(const Formula &)> NoNot = [&](const Formula &G) {
    if (G.node()->kind() == FormulaNode::Kind::Not)
      return false;
    for (const Formula &K : G.node()->Children)
      if (!NoNot(K))
        return false;
    return true;
  };
  EXPECT_TRUE(NoNot(N));
  // Semantics preserved on a grid.
  for (int64_t XV = -2; XV <= 2; ++XV)
    for (int64_t YV = -2; YV <= 2; ++YV) {
      std::map<VarId, int64_t> M{{X(), XV}, {Y(), YV}};
      EXPECT_EQ(F.eval(M), N.eval(M)) << XV << "," << YV;
    }
}

TEST(Formula, DNFSplitsNe) {
  Formula F = Formula::cmp(ex(X()), CmpKind::Ne, LinExpr(0));
  auto DNF = F.toDNF();
  ASSERT_TRUE(DNF.has_value());
  EXPECT_EQ(DNF->size(), 2u);
}

TEST(Formula, DNFDistributes) {
  // (a || b) && (c || d) -> 4 clauses.
  Formula A = Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0));
  Formula B = Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(10));
  Formula C = Formula::cmp(ex(Y()), CmpKind::Le, LinExpr(0));
  Formula D = Formula::cmp(ex(Y()), CmpKind::Ge, LinExpr(10));
  Formula F = Formula::conj2(Formula::disj2(A, B), Formula::disj2(C, D));
  auto DNF = F.toDNF();
  ASSERT_TRUE(DNF.has_value());
  EXPECT_EQ(DNF->size(), 4u);
  for (const ConstraintConj &Conj : *DNF)
    EXPECT_EQ(Conj.size(), 2u);
}

TEST(Formula, DNFOverflowCap) {
  // 2^12 clauses exceeds a cap of 16.
  std::vector<Formula> Fs;
  for (int I = 0; I < 12; ++I) {
    VarId V = mkVar("dnf_v" + std::to_string(I));
    Fs.push_back(Formula::disj2(
        Formula::cmp(LinExpr::var(V), CmpKind::Le, LinExpr(0)),
        Formula::cmp(LinExpr::var(V), CmpKind::Ge, LinExpr(10))));
  }
  EXPECT_FALSE(Formula::conj(Fs).toDNF(16).has_value());
}

TEST(Formula, StrSmoke) {
  Formula F = Formula::conj2(Formula::cmp(ex(X()), CmpKind::Le, ex(Y())),
                             Formula::top());
  EXPECT_NE(F.str().find("<= 0"), std::string::npos);
}
