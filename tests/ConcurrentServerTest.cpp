//===- tests/ConcurrentServerTest.cpp - multi-client front end --*- C++ -*-===//
//
// The regression fence for the concurrent analysis server
// (api/ConcurrentServer.h): the multi-client, multiplexed front end
// must be protocol-compatible with the serial server AND byte-identical
// to fresh-context runs — concurrency may change which requests compute
// answers and which reuse them, never the bytes of any response.
//
//  * Stress: K=8 client threads race program requests over a small
//    worker pool with a tight reclaim cadence, so epoch reclamation
//    interleaves with in-flight work. Every response is diffed against
//    a fresh serial session-wrapped run of the same source; zero
//    global-id fallbacks; the shared VarPool never grows (per-request
//    sessions are private).
//
//  * Admission control: a deterministic load-shed (dispatch frozen via
//    the test hook, queue filled to capacity) with the exact documented
//    error object; drain and health verbs.
//
//  * Transport: the unix-domain socket loop with concurrent clients,
//    responses correlated by id.
//
// The suites run under TSan in CI (tsan-concurrency job) — the
// scheduler races here are the point, not an accident.
//
//===----------------------------------------------------------------------===//

#include "api/ConcurrentServer.h"
#include "arith/Var.h"
#include "support/Json.h"
#include "support/UnixSocket.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <thread>

using namespace tnt;

namespace {

/// The serial fresh-context reference for one source: a virgin VarPool
/// session around a bare analyzeProgram — exactly the context every
/// server request runs in, so equality IS the byte-identity contract.
/// Rendering happens INSIDE the session (spellings are session-local;
/// they are unresolvable once the lease dies), so the reference is the
/// rendered strings, not the AnalysisResult.
struct FreshRun {
  bool Ok = false;
  std::string Diags;
  std::string Output;
  std::string Verdict;
};
FreshRun freshReference(const std::string &Src,
                        const AnalyzerConfig &Config) {
  VarPool::Session Lease;
  VarPool::SessionScope Active(Lease);
  AnalysisResult R = analyzeProgram(Src, Config);
  FreshRun Out;
  Out.Ok = R.Ok;
  Out.Diags = R.Diagnostics;
  if (R.Ok) {
    Out.Output = R.str();
    Out.Verdict = outcomeStr(R.outcome("main"));
  }
  return Out;
}

/// Parses a response and checks it against the fresh reference run.
void expectMatchesFresh(const std::string &Response, const std::string &Src,
                        const AnalyzerConfig &Config, unsigned Idx) {
  std::optional<json::Value> R = json::parse(Response);
  ASSERT_TRUE(R && R->isObject()) << Response;
  const json::Value *Ok = R->field("ok");
  ASSERT_TRUE(Ok != nullptr && Ok->asBool())
      << "request " << Idx << ": " << Response;
  FreshRun Fresh = freshReference(Src, Config);
  ASSERT_TRUE(Fresh.Ok) << Fresh.Diags;
  const json::Value *Output = R->field("output");
  const json::Value *Verdict = R->field("verdict");
  ASSERT_TRUE(Output != nullptr && Verdict != nullptr) << Response;
  EXPECT_EQ(Output->asString(), Fresh.Output) << "request " << Idx;
  EXPECT_EQ(Verdict->asString(), Fresh.Verdict) << "request " << Idx;
}

} // namespace

TEST(ServerConcurrent, MultiClientByteIdenticalToSerialFreshRuns) {
  ConcurrentServerOptions CO;
  CO.Workers = 4;
  CO.QueueDepth = 64;
  // Tight cadence: quiescent reclaim epochs must interleave with the
  // client races, not happen once at the end.
  CO.Server.ReclaimEvery = 10;
  CO.Server.GlobalSatCapacity = 1u << 9;
  CO.Server.GlobalDnfCapacity = 1u << 6;

  constexpr unsigned Clients = 8;
  constexpr unsigned PerClient = 6;
  std::vector<BatchItem> Items = corpusBatchItems(12);
  const size_t PoolBefore = VarPool::get().size();
  const uint64_t FallbacksBefore = VarPool::get().scopedFallbacks();

  // Sources and responses indexed by request id = C * PerClient + R.
  std::vector<std::string> Sources(Clients * PerClient);
  std::vector<std::string> Responses(Clients * PerClient);
  for (unsigned Idx = 0; Idx < Clients * PerClient; ++Idx)
    Sources[Idx] = soakVariantSource(Items[Idx % Items.size()].Source, Idx);

  {
    ConcurrentAnalysisServer Server(CO);
    std::vector<std::thread> Threads;
    for (unsigned C = 0; C < Clients; ++C)
      Threads.emplace_back([&, C] {
        for (unsigned R = 0; R < PerClient; ++R) {
          unsigned Idx = C * PerClient + R;
          Responses[Idx] =
              Server.submitAndWait(soakRequestJson(Idx, Sources[Idx]));
        }
      });
    for (std::thread &T : Threads)
      T.join();

    ServerStats S = Server.stats();
    EXPECT_EQ(S.Requests, uint64_t(Clients) * PerClient);
    EXPECT_EQ(S.Errors, 0u);
    EXPECT_GT(S.Reclaims, 0u)
        << "reclamation never interleaved with the concurrent soak";
    EXPECT_EQ(Server.shedCount(), 0u)
        << "an unsaturated queue shed requests";
  }

  // Every concurrent response equals a fresh serial session run —
  // computed AFTER the races, so the comparisons cannot perturb them.
  for (unsigned Idx = 0; Idx < Clients * PerClient; ++Idx)
    expectMatchesFresh(Responses[Idx], Sources[Idx], CO.Server.Program, Idx);

  // The carve-out retirement fences: no request fell back to the
  // shared global-id region, and no request-local spelling leaked into
  // the shared pool.
  EXPECT_EQ(VarPool::get().scopedFallbacks(), FallbacksBefore);
  EXPECT_EQ(VarPool::get().size(), PoolBefore);
}

TEST(ServerConcurrent, BatchVerbMatchesSerialServer) {
  // analyze-batch through the concurrent front end produces the same
  // response body a fresh serial server produces for the same line —
  // batch elements run per-request sessions in both.
  std::vector<BatchItem> Items = corpusBatchItems(3);
  std::string Line = "{\"id\":7,\"verb\":\"analyze-batch\",\"programs\":[";
  for (size_t I = 0; I < Items.size(); ++I)
    Line += (I ? "," : "") +
            ("{\"program\":" + json::quoted(Items[I].Source) + "}");
  Line += "]}";

  ConcurrentAnalysisServer Conc{ConcurrentServerOptions{}};
  std::string ConcResp = Conc.submitAndWait(Line);
  AnalysisServer Serial{ServerOptions{}};
  EXPECT_EQ(ConcResp, Serial.handleLine(Line));
  EXPECT_EQ(Conc.stats().Requests, Items.size());
}

TEST(ServerConcurrent, DeterministicLoadShedAndRecovery) {
  ConcurrentServerOptions CO;
  CO.Workers = 1;
  CO.QueueDepth = 2;
  ConcurrentAnalysisServer Server(CO);

  const char *Src = "int main(int n) { return n; }";

  // Freeze dispatch so the queue fills deterministically — no racing
  // worker can pop an entry between our submissions.
  Server.pauseDispatchForTest(true);
  std::vector<std::thread> Blocked;
  for (unsigned I = 0; I < CO.QueueDepth; ++I)
    Blocked.emplace_back([&Server, Src, I] {
      std::string Resp = Server.submitAndWait(soakRequestJson(I, Src));
      std::optional<json::Value> R = json::parse(Resp);
      const json::Value *Ok =
          R && R->isObject() ? R->field("ok") : nullptr;
      EXPECT_TRUE(Ok != nullptr && Ok->asBool()) << Resp;
    });
  // Wait until both requests are actually queued (health reports the
  // queue depth; the submitting threads enqueue before blocking).
  for (int Spin = 0; Spin < 2000; ++Spin) {
    std::string H = Server.submitAndWait("{\"id\":0,\"verb\":\"health\"}");
    std::optional<json::Value> R = json::parse(H);
    ASSERT_TRUE(R.has_value()) << H;
    if (static_cast<size_t>(R->field("queued")->asNumber()) ==
        CO.QueueDepth)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The next program request finds the queue full: load-shed, with the
  // exact documented error object — a well-formed response the client
  // can retry on, not a dropped connection.
  EXPECT_EQ(Server.submitAndWait(soakRequestJson(9, Src)),
            "{\"id\":9,\"ok\":false,"
            "\"error\":\"server overloaded: queue full\",\"shed\":true}");
  EXPECT_EQ(Server.shedCount(), 1u);

  // Control verbs are never shed: stats still answers while the queue
  // is full.
  std::optional<json::Value> Stats =
      json::parse(Server.submitAndWait("{\"id\":10,\"verb\":\"stats\"}"));
  ASSERT_TRUE(Stats.has_value());
  EXPECT_TRUE(Stats->field("ok")->asBool());

  // Resume: the backlog drains, the blocked clients get real answers.
  Server.pauseDispatchForTest(false);
  for (std::thread &T : Blocked)
    T.join();
  EXPECT_EQ(Server.stats().Requests, uint64_t(CO.QueueDepth));
  EXPECT_EQ(Server.stats().Errors, 0u);
}

TEST(ServerConcurrent, DrainAndHealthVerbs) {
  ConcurrentServerOptions CO;
  CO.Workers = 2;
  ConcurrentAnalysisServer Server(CO);

  std::string H = Server.submitAndWait("{\"id\":1,\"verb\":\"health\"}");
  std::optional<json::Value> R = json::parse(H);
  ASSERT_TRUE(R.has_value()) << H;
  EXPECT_TRUE(R->field("ok")->asBool());
  EXPECT_EQ(R->field("health")->asString(), "ok");
  EXPECT_EQ(static_cast<unsigned>(R->field("workers")->asNumber()),
            CO.Workers);

  // Drain with work in flight: returns only once idle, and afterwards
  // health reports an empty server.
  const char *Src =
      "int dec(int k) { if (k <= 0) return 0; else return dec(k - 1); } "
      "int main(int n) { return dec(n); }";
  std::vector<std::thread> Clients;
  for (unsigned I = 0; I < 4; ++I)
    Clients.emplace_back([&Server, Src, I] {
      (void)Server.submitAndWait(soakRequestJson(I, Src));
    });
  std::string D = Server.submitAndWait("{\"id\":2,\"verb\":\"drain\"}");
  EXPECT_EQ(D, "{\"id\":2,\"ok\":true,\"drained\":true}");
  for (std::thread &T : Clients)
    T.join();
  R = json::parse(Server.submitAndWait("{\"id\":3,\"verb\":\"health\"}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->field("inflight")->asNumber(), 0.0);
  EXPECT_EQ(R->field("queued")->asNumber(), 0.0);

  // Post-drain the server accepts work again (drain is a barrier, not
  // a shutdown).
  std::string After = Server.submitAndWait(soakRequestJson(9, Src));
  R = json::parse(After);
  ASSERT_TRUE(R.has_value()) << After;
  EXPECT_TRUE(R->field("ok")->asBool());
}

TEST(ServerConcurrent, SocketTransportMultiClientAndShutdown) {
  std::string Path = ::testing::TempDir() + "tnt_conc_server.sock";
  std::filesystem::remove(Path);

  ConcurrentServerOptions CO;
  CO.Workers = 4;
  CO.SocketPath = Path;
  ConcurrentAnalysisServer Server(CO);
  std::thread ServerThread([&Server] {
    std::string Err;
    EXPECT_EQ(Server.serveSocket(&Err), 0) << Err;
  });
  for (int Spin = 0; Spin < 2000 && !std::filesystem::exists(Path); ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(std::filesystem::exists(Path)) << "socket never bound";

  // K clients, each writing all its requests up front and then reading
  // the responses — which may arrive OUT OF ORDER; correlate by id.
  constexpr unsigned Clients = 4;
  constexpr unsigned PerClient = 3;
  std::vector<BatchItem> Items = corpusBatchItems(6);
  std::vector<std::string> Sources(Clients * PerClient);
  for (unsigned Idx = 0; Idx < Sources.size(); ++Idx)
    Sources[Idx] = soakVariantSource(Items[Idx % Items.size()].Source, Idx);

  std::atomic<unsigned> Failures{0};
  std::vector<std::map<unsigned, std::string>> ByClient(Clients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      std::string Err;
      int Fd = unixConnect(Path, &Err);
      if (Fd < 0) {
        ADD_FAILURE() << Err;
        ++Failures;
        return;
      }
      std::string Out;
      for (unsigned R = 0; R < PerClient; ++R) {
        unsigned Idx = C * PerClient + R;
        Out += soakRequestJson(Idx, Sources[Idx]) + "\n";
      }
      if (!writeAll(Fd, Out.data(), Out.size())) {
        ADD_FAILURE() << "short write";
        ++Failures;
        closeFd(Fd);
        return;
      }
      LineReader Reader(Fd);
      std::string Line;
      for (unsigned R = 0; R < PerClient && Reader.readLine(Line); ++R) {
        std::optional<json::Value> V = json::parse(Line);
        if (!V || V->field("id") == nullptr) {
          ADD_FAILURE() << Line;
          ++Failures;
          continue;
        }
        ByClient[C][static_cast<unsigned>(V->field("id")->asNumber())] =
            Line;
      }
      closeFd(Fd);
    });
  for (std::thread &T : Threads)
    T.join();
  ASSERT_EQ(Failures.load(), 0u);

  // One more client shuts the server down and still receives the ack.
  {
    std::string Err;
    int Fd = unixConnect(Path, &Err);
    ASSERT_GE(Fd, 0) << Err;
    std::string Bye = "{\"id\":99,\"verb\":\"shutdown\"}\n";
    ASSERT_TRUE(writeAll(Fd, Bye.data(), Bye.size()));
    LineReader Reader(Fd);
    std::string Ack;
    ASSERT_TRUE(Reader.readLine(Ack));
    std::optional<json::Value> V = json::parse(Ack);
    ASSERT_TRUE(V.has_value()) << Ack;
    EXPECT_TRUE(V->field("ok")->asBool());
    EXPECT_TRUE(V->field("shutdown")->asBool());
    closeFd(Fd);
  }
  ServerThread.join();
  EXPECT_FALSE(std::filesystem::exists(Path))
      << "socket path not unlinked on shutdown";

  // All responses arrived, each byte-identical to a fresh serial run.
  for (unsigned C = 0; C < Clients; ++C) {
    ASSERT_EQ(ByClient[C].size(), size_t(PerClient)) << "client " << C;
    for (const auto &[Idx, Resp] : ByClient[C])
      expectMatchesFresh(Resp, Sources[Idx], CO.Server.Program, Idx);
  }
}
