//===- tests/IntervalTest.cpp - interval-prefilter edge cases ---*- C++ -*-===//
//
// The first ladder rung in isolation: saturating int64 arithmetic at
// the extremes, strict-vs-non-strict tightening, contradictory
// equalities, fixpoint termination on cyclic contraction chains, the
// Ne bail-out, witness overflow rejection, and a fixed-seed property
// sweep pinning every definite prefilter verdict against Omega.
//
//===----------------------------------------------------------------------===//

#include "arith/Intern.h"
#include "solver/Interval.h"
#include "solver/Omega.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace tnt;

namespace {

LinExpr ev(const char *N, int64_t Coeff = 1) {
  return LinExpr::var(mkVar(N), Coeff);
}

Constraint cmp(const LinExpr &L, CmpKind K, int64_t C) {
  return Constraint::make(L, K, LinExpr(C));
}

//===----------------------------------------------------------------------===//
// Saturating arithmetic at the int64 extremes.
//===----------------------------------------------------------------------===//

TEST(Interval, SatAddExtremes) {
  EXPECT_EQ(satAdd(1, 2), 3);
  EXPECT_EQ(satAdd(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(satAdd(INT64_MAX, INT64_MAX), INT64_MAX);
  EXPECT_EQ(satAdd(INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(satAdd(INT64_MIN, INT64_MIN), INT64_MIN);
  // Opposite signs never overflow.
  EXPECT_EQ(satAdd(INT64_MAX, INT64_MIN), -1);
  EXPECT_EQ(satAdd(INT64_MIN, INT64_MAX), -1);
  EXPECT_EQ(satAdd(INT64_MAX, -1), INT64_MAX - 1);
  EXPECT_EQ(satAdd(INT64_MIN, 1), INT64_MIN + 1);
}

TEST(Interval, SatMulExtremes) {
  EXPECT_EQ(satMul(3, -4), -12);
  EXPECT_EQ(satMul(INT64_MAX, 2), INT64_MAX);
  EXPECT_EQ(satMul(INT64_MAX, -2), INT64_MIN);
  EXPECT_EQ(satMul(INT64_MIN, 2), INT64_MIN);
  // -MIN is the classic UB negation; saturation clamps it instead.
  EXPECT_EQ(satMul(INT64_MIN, -1), INT64_MAX);
  EXPECT_EQ(satMul(-1, INT64_MIN), INT64_MAX);
  EXPECT_EQ(satMul(INT64_MIN, INT64_MIN), INT64_MAX);
  EXPECT_EQ(satMul(INT64_MAX, 0), 0);
  EXPECT_EQ(satMul(0, INT64_MIN), 0);
  EXPECT_EQ(satMul(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(satMul(INT64_MIN, 1), INT64_MIN);
}

//===----------------------------------------------------------------------===//
// Definite verdicts on simple boxes.
//===----------------------------------------------------------------------===//

TEST(Interval, EmptyBoxIsUnsat) {
  // x >= 5 && x <= 3.
  ConstraintConj Conj = {cmp(ev("iv_a"), CmpKind::Ge, 5),
                         cmp(ev("iv_a"), CmpKind::Le, 3)};
  EXPECT_EQ(intervalPrefilter(Conj).Verdict, Tri::False);
}

TEST(Interval, PointBoxIsSatWithVerifiedWitness) {
  // 2 <= x <= 2: the witness is the point itself.
  ConstraintConj Conj = {cmp(ev("iv_b"), CmpKind::Ge, 2),
                         cmp(ev("iv_b"), CmpKind::Le, 2)};
  IntervalOutcome IO = intervalPrefilter(Conj);
  ASSERT_EQ(IO.Verdict, Tri::True);
  for (const Constraint &C : Conj)
    EXPECT_TRUE(C.eval(IO.Witness));
}

TEST(Interval, StrictVsNonStrictTightening) {
  // Over the integers, x > 0 && x < 1 tightens to x >= 1 && x <= 0:
  // empty. The non-strict twin x >= 0 && x <= 1 is satisfiable.
  ConstraintConj Strict = {cmp(ev("iv_c"), CmpKind::Gt, 0),
                           cmp(ev("iv_c"), CmpKind::Lt, 1)};
  EXPECT_EQ(intervalPrefilter(Strict).Verdict, Tri::False);

  ConstraintConj NonStrict = {cmp(ev("iv_c"), CmpKind::Ge, 0),
                              cmp(ev("iv_c"), CmpKind::Le, 1)};
  EXPECT_EQ(intervalPrefilter(NonStrict).Verdict, Tri::True);
}

TEST(Interval, ContradictoryEqualities) {
  // x == 3 && x == 4.
  ConstraintConj Conj = {cmp(ev("iv_d"), CmpKind::Eq, 3),
                         cmp(ev("iv_d"), CmpKind::Eq, 4)};
  EXPECT_EQ(intervalPrefilter(Conj).Verdict, Tri::False);

  // x == 3 && x <= 2: equality rows contract both sides.
  ConstraintConj Mixed = {cmp(ev("iv_d"), CmpKind::Eq, 3),
                          cmp(ev("iv_d"), CmpKind::Le, 2)};
  EXPECT_EQ(intervalPrefilter(Mixed).Verdict, Tri::False);
}

TEST(Interval, ConstantAtomRefutation) {
  // 0 <= 0 && 1 <= 0: the second atom is constant-false.
  ConstraintConj Conj = {Constraint::leZero(LinExpr(0)),
                         Constraint::leZero(LinExpr(1))};
  EXPECT_EQ(intervalPrefilter(Conj).Verdict, Tri::False);
}

TEST(Interval, NeAtomsAreNeverAnswered) {
  // Omega's contract is Ne-free input (callers split Ne first), so the
  // prefilter must decline ANY conjunction carrying one — even a
  // constant Ne it could refute honestly. The ladder's byte-identity
  // is against the Omega path's actual behavior, not against ideal Ne
  // semantics.
  ConstraintConj ConstNe = {Constraint(LinExpr(0), RelKind::Ne)};
  EXPECT_EQ(intervalPrefilter(ConstNe).Verdict, Tri::Unknown);

  ConstraintConj Mixed = {cmp(ev("iv_e"), CmpKind::Ge, 5),
                          cmp(ev("iv_e"), CmpKind::Le, 3),
                          Constraint(ev("iv_e") - 7, RelKind::Ne)};
  EXPECT_EQ(intervalPrefilter(Mixed).Verdict, Tri::Unknown);
}

//===----------------------------------------------------------------------===//
// Termination and soundness on diverging contraction chains.
//===----------------------------------------------------------------------===//

TEST(Interval, CyclicChainTerminatesUnknown) {
  // x >= 0, y >= 0, x <= y - 1, y <= x - 1: each pass raises both
  // lower bounds by one forever; the pass cap must stop it (the test
  // would hang otherwise) and the verdict stays Unknown — never a
  // false SAT.
  ConstraintConj Conj = {
      cmp(ev("iv_f"), CmpKind::Ge, 0), cmp(ev("iv_g"), CmpKind::Ge, 0),
      Constraint::leZero(ev("iv_f") - ev("iv_g") + 1),
      Constraint::leZero(ev("iv_g") - ev("iv_f") + 1)};
  EXPECT_EQ(intervalPrefilter(Conj).Verdict, Tri::Unknown);
}

TEST(Interval, DivergingChainWitnessOverflowRejected) {
  // Regression for the witness-overflow unsoundness: pfb = pfc + 1,
  // pfc <= 3*pfb, pfc <= -5 is UNSAT, but with no finite lower bounds
  // the contraction dives toward the sentinels and stops at the pass
  // cap with huge-magnitude endpoints; a witness built from them once
  // wrapped LinExpr::eval into "satisfied". The overflow-checked
  // verification must reject it — False or Unknown are both sound
  // here, a True answer is the bug.
  ConstraintConj Conj = {
      Constraint::eqZero(ev("iv_h") - ev("iv_i") - 1),
      Constraint::leZero(ev("iv_h", -3) + ev("iv_i")),
      Constraint::leZero(ev("iv_i") + 5)};
  EXPECT_EQ(Omega::isSatConj(Conj), Tri::False);
  EXPECT_NE(intervalPrefilter(Conj).Verdict, Tri::True);
}

TEST(Interval, ExtremeConstantsStaySound) {
  // Bounds at the representation edge: x >= INT64_MAX is satisfiable
  // (witness INT64_MAX); adding x <= 0 refutes it. Saturation may
  // widen either into Unknown, but definite answers must be right.
  ConstraintConj Hi = {cmp(ev("iv_j"), CmpKind::Ge, INT64_MAX)};
  IntervalOutcome IO = intervalPrefilter(Hi);
  EXPECT_NE(IO.Verdict, Tri::False);
  if (IO.Verdict == Tri::True)
    for (const Constraint &C : Hi)
      EXPECT_TRUE(C.eval(IO.Witness));

  ConstraintConj Clash = {cmp(ev("iv_j"), CmpKind::Ge, INT64_MAX),
                          cmp(ev("iv_j"), CmpKind::Le, 0)};
  EXPECT_NE(intervalPrefilter(Clash).Verdict, Tri::True);
}

//===----------------------------------------------------------------------===//
// Property sweep: every definite prefilter verdict agrees with Omega.
//===----------------------------------------------------------------------===//

TEST(Interval, PrefilterVerdictsMatchOmegaOnRandomConjunctions) {
  // Fixed seed: the sweep is part of the pinned suite, not a fuzzer.
  // Small Ne-free systems where Omega always decides, so agreement can
  // be asserted exactly — this is the ladder's core invariant (an
  // interval answer must be THE answer, not merely a sound one).
  std::mt19937 Gen(20150613);
  std::uniform_int_distribution<int> NumAtoms(1, 4), NumVars(1, 3),
      Coeff(-3, 3), Konst(-10, 10), RelPick(0, 3);

  unsigned Answered = 0;
  const unsigned Rounds = 600;
  for (unsigned R = 0; R < Rounds; ++R) {
    const char *Names[3] = {"iv_p0", "iv_p1", "iv_p2"};
    int Vars = NumVars(Gen);
    ConstraintConj Conj;
    int Atoms = NumAtoms(Gen);
    for (int A = 0; A < Atoms; ++A) {
      LinExpr E((int64_t)Konst(Gen));
      for (int V = 0; V < Vars; ++V) {
        int C = Coeff(Gen);
        if (C != 0)
          E = E + ev(Names[V], C);
      }
      // 3:1 Le-to-Eq mix, mirroring real queries.
      Conj.push_back(RelPick(Gen) == 0 ? Constraint::eqZero(E)
                                       : Constraint::leZero(E));
    }

    IntervalOutcome IO = intervalPrefilter(Conj);
    if (IO.Verdict == Tri::Unknown)
      continue;
    ++Answered;
    Tri O = Omega::isSatConj(Conj);
    ASSERT_NE(O, Tri::Unknown) << "sweep domain assumption: " << conjStr(Conj);
    EXPECT_EQ(IO.Verdict, O) << conjStr(Conj);
    if (IO.Verdict == Tri::True)
      for (const Constraint &C : Conj)
        EXPECT_TRUE(C.eval(IO.Witness)) << conjStr(Conj);
  }
  // The sweep must actually exercise both engines side by side.
  EXPECT_GT(Answered, Rounds / 4);
}

} // namespace
