//===- tests/SupportTest.cpp - support layer unit tests --------*- C++ -*-===//

#include "support/Diagnostics.h"
#include "support/ExtNat.h"
#include "support/Json.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace tnt;

//===----------------------------------------------------------------------===//
// Integer helpers
//===----------------------------------------------------------------------===//

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(Lcm, Basics) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(-4, 6), 12);
  EXPECT_EQ(lcm64(0, 6), 0);
  EXPECT_EQ(lcm64(7, 13), 91);
}

TEST(FloorDiv, RoundsTowardNegInfinity) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
}

TEST(CeilDiv, RoundsTowardPosInfinity) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
}

TEST(FloorMod, NonNegative) {
  EXPECT_EQ(floorMod(7, 3), 1);
  EXPECT_EQ(floorMod(-7, 3), 2);
  EXPECT_EQ(floorMod(6, 3), 0);
  EXPECT_EQ(floorMod(-6, 3), 0);
}

TEST(HatMod, SymmetricInterval) {
  // hatMod(a, b) is congruent to a mod b and lies in (-b/2, b/2].
  for (int64_t A = -20; A <= 20; ++A) {
    for (int64_t B = 2; B <= 9; ++B) {
      int64_t H = hatMod(A, B);
      EXPECT_EQ(floorMod(H - A, B), 0) << A << " mod " << B;
      EXPECT_GT(2 * H, -B) << A << " mod " << B;
      EXPECT_LE(2 * H, B) << A << " mod " << B;
    }
  }
}

TEST(HatMod, UnitCoefficientProperty) {
  // For |a| = m-1: hatMod(a, m) == -sign(a); the modulus trick of the
  // Omega test relies on this.
  for (int64_t M = 3; M <= 12; ++M) {
    EXPECT_EQ(hatMod(M - 1, M), -1);
    EXPECT_EQ(hatMod(-(M - 1), M), 1);
  }
}

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(Rational, NormalizationAndSign) {
  Rational R(6, -4);
  EXPECT_EQ(R.num(), -3);
  EXPECT_EQ(R.den(), 2);
  EXPECT_TRUE(R.isNeg());
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_TRUE(Rational(3, 6) == Rational(1, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-3, 2).str(), "-3/2");
}

//===----------------------------------------------------------------------===//
// ExtNat: the N-infinity domain of Section 3
//===----------------------------------------------------------------------===//

TEST(ExtNat, Ordering) {
  ExtNat Zero(0), Five(5), Inf = ExtNat::infinity();
  EXPECT_LT(Zero, Five);
  EXPECT_LT(Five, Inf);
  EXPECT_FALSE(Inf < Inf);
  EXPECT_LE(Inf, Inf);
  EXPECT_TRUE(Inf == ExtNat::infinity());
}

TEST(ExtNat, Addition) {
  EXPECT_EQ(ExtNat(2) + ExtNat(3), ExtNat(5));
  EXPECT_TRUE((ExtNat(2) + ExtNat::infinity()).isInf());
  EXPECT_TRUE((ExtNat::infinity() + ExtNat::infinity()).isInf());
}

TEST(ExtNat, SubLowerPaperIdentities) {
  // L1 -L L2 == min{ r | r + L2 >= L1 }: never negative, inf -L inf == 0.
  EXPECT_EQ(ExtNat(5).subLower(ExtNat(3)), ExtNat(2));
  EXPECT_EQ(ExtNat(3).subLower(ExtNat(5)), ExtNat(0));
  EXPECT_EQ(ExtNat::infinity().subLower(ExtNat::infinity()), ExtNat(0));
  EXPECT_TRUE(ExtNat::infinity().subLower(ExtNat(7)).isInf());
  EXPECT_EQ(ExtNat(7).subLower(ExtNat::infinity()), ExtNat(0));
}

TEST(ExtNat, SubUpperPaperIdentities) {
  // U1 -U U2 == max{ r | r + U2 <= U1 }, defined iff U1 >= U2;
  // inf -U inf == inf.
  EXPECT_EQ(ExtNat(5).subUpper(ExtNat(3)), ExtNat(2));
  EXPECT_TRUE(ExtNat::infinity().subUpper(ExtNat::infinity()).isInf());
  EXPECT_TRUE(ExtNat::infinity().subUpper(ExtNat(3)).isInf());
  EXPECT_EQ(ExtNat(3).subUpper(ExtNat(3)), ExtNat(0));
}

TEST(ExtNat, SubLowerIsMinimalResidue) {
  // Exhaustively verify the defining property on a finite window.
  for (int64_t L1 = 0; L1 <= 10; ++L1)
    for (int64_t L2 = 0; L2 <= 10; ++L2) {
      ExtNat R = ExtNat(L1).subLower(ExtNat(L2));
      ASSERT_FALSE(R.isInf());
      // r + L2 >= L1 holds.
      EXPECT_GE(R.finite() + L2, L1);
      // Minimality: r-1 violates it (when r > 0).
      if (R.finite() > 0) {
        EXPECT_LT(R.finite() - 1 + L2, L1);
      }
    }
}

TEST(ExtNat, Str) {
  EXPECT_EQ(ExtNat(3).str(), "3");
  EXPECT_EQ(ExtNat::infinity().str(), "inf");
}

//===----------------------------------------------------------------------===//
// JSON edge cases (the server protocol and the spec store file format
// both ride on this parser/writer).
//===----------------------------------------------------------------------===//

TEST(Json, EscapeSequencesDecodeAndReEncode) {
  std::optional<json::Value> V =
      json::parse(R"("a\"b\\c\/d\b\f\n\r\teA")");
  ASSERT_TRUE(V && V->isString());
  EXPECT_EQ(V->asString(), "a\"b\\c/d\b\f\n\r\teA");

  // The escaper round-trips through the parser, including control
  // characters and DEL.
  std::string Nasty = "quote\" back\\ nl\n tab\t bell\x07 del\x7f end";
  std::optional<json::Value> Back = json::parse(json::quoted(Nasty));
  ASSERT_TRUE(Back && Back->isString());
  EXPECT_EQ(Back->asString(), Nasty);

  // Raw control characters inside string literals are rejected.
  EXPECT_FALSE(json::parse("\"raw\ncontrol\""));
  EXPECT_FALSE(json::parse(R"("bad \q escape")"));
  EXPECT_FALSE(json::parse(R"("truncated \u00)"));
}

TEST(Json, SurrogatePairsAndLoneSurrogates) {
  // U+1F600 as a surrogate pair decodes to 4-byte UTF-8.
  std::optional<json::Value> V = json::parse(R"("😀")");
  ASSERT_TRUE(V && V->isString());
  EXPECT_EQ(V->asString(), "\xF0\x9F\x98\x80");

  // A lone high surrogate, and a high surrogate followed by a non-low
  // escape, decode to U+FFFD — never to invalid UTF-8.
  std::optional<json::Value> Lone = json::parse(R"("\ud83dX")");
  ASSERT_TRUE(Lone && Lone->isString());
  EXPECT_EQ(Lone->asString(), "\xEF\xBF\xBDX");
  std::optional<json::Value> HighThenBmp = json::parse(R"("\ud83dA")");
  ASSERT_TRUE(HighThenBmp && HighThenBmp->isString());
  EXPECT_EQ(HighThenBmp->asString(), "\xEF\xBF\xBD""A");
  // An unpaired LOW surrogate alone is also replaced.
  std::optional<json::Value> Low = json::parse(R"("\ude00")");
  ASSERT_TRUE(Low && Low->isString());
  EXPECT_EQ(Low->asString(), "\xEF\xBF\xBD");
}

TEST(Json, DeepNestingIsBoundedNotCrashing) {
  auto nested = [](unsigned Depth) {
    std::string S(Depth, '[');
    S += "1";
    S.append(Depth, ']');
    return S;
  };
  // Comfortably inside the bound.
  std::optional<json::Value> Ok = json::parse(nested(100));
  ASSERT_TRUE(Ok.has_value());
  const json::Value *Cur = &*Ok;
  for (unsigned I = 0; I < 100; ++I) {
    ASSERT_TRUE(Cur->isArray());
    ASSERT_EQ(Cur->elements().size(), 1u);
    Cur = &Cur->elements()[0];
  }
  EXPECT_TRUE(Cur->isNumber());

  // Past the recursion bound: a clean error, not a stack overflow.
  std::string Err;
  EXPECT_FALSE(json::parse(nested(5000), &Err));
  EXPECT_NE(Err.find("nesting too deep"), std::string::npos);

  // Deep OBJECT nesting hits the same bound.
  std::string Obj;
  for (unsigned I = 0; I < 200; ++I)
    Obj += "{\"k\":";
  Obj += "null";
  Obj.append(200, '}');
  EXPECT_FALSE(json::parse(Obj));
}

TEST(Json, NumberIdRoundTripping) {
  // The raw lexeme survives parse -> write for every shape, so echoed
  // ids and 64-bit store numbers never get reformatted through a
  // double.
  for (const char *Lexeme :
       {"17", "-0", "9223372036854775807", "-9223372036854775808",
        "3.5", "-2.5e3", "1e-7", "0.0001"}) {
    std::optional<json::Value> V = json::parse(Lexeme);
    ASSERT_TRUE(V && V->isNumber()) << Lexeme;
    EXPECT_EQ(V->rawNumber(), Lexeme);
    EXPECT_EQ(json::write(*V), Lexeme);
  }

  // toInt64: exact for the full int64 range, refuses fractions,
  // exponents and out-of-range values instead of rounding.
  auto i64 = [](const char *Lexeme) {
    return json::toInt64(*json::parse(Lexeme));
  };
  EXPECT_EQ(i64("9223372036854775807").value_or(0), INT64_MAX);
  EXPECT_EQ(i64("-9223372036854775808").value_or(0), INT64_MIN);
  EXPECT_EQ(i64("0").value_or(1), 0);
  EXPECT_FALSE(i64("1.5").has_value());
  EXPECT_FALSE(i64("1e3").has_value());
  EXPECT_FALSE(i64("9223372036854775808").has_value()); // INT64_MAX + 1.
  EXPECT_FALSE(json::toInt64(*json::parse("\"17\"")).has_value());

  // Malformed numbers are rejected up front (the lexeme is echoed
  // verbatim into responses, so leniency would corrupt output).
  for (const char *Bad : {"01", "1.", ".5", "1e", "+1", "--1"})
    EXPECT_FALSE(json::parse(Bad).has_value()) << Bad;
}

TEST(Json, WriteRoundTripsDocuments) {
  const char *Doc =
      R"({"a":[1,2.5,"x\n",true,null],"b":{"nested":[[]],"n":-42},"c":""})";
  std::optional<json::Value> V = json::parse(Doc);
  ASSERT_TRUE(V.has_value());
  // Member and element order are preserved; compact output re-parses
  // to the same rendering (fixpoint).
  std::string W = json::write(*V);
  EXPECT_EQ(W, Doc);
  std::optional<json::Value> V2 = json::parse(W);
  ASSERT_TRUE(V2.has_value());
  EXPECT_EQ(json::write(*V2), W);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, FormattingAndDefaults) {
  DiagnosticEngine DE;
  EXPECT_EQ(DE.minSeverity(), DiagKind::Note); // Default keeps everything.
  DE.error({3, 7}, "bad thing");
  DE.warning({1, 1}, "odd thing");
  DE.note({}, "context");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.errorCount(), 1u);
  ASSERT_EQ(DE.all().size(), 3u);
  EXPECT_EQ(DE.all()[0].str(), "3:7: error: bad thing");
  EXPECT_EQ(DE.all()[1].str(), "1:1: warning: odd thing");
  EXPECT_EQ(DE.all()[2].str(), "<unknown>: note: context");
  EXPECT_EQ(DE.str(), "3:7: error: bad thing\n"
                      "1:1: warning: odd thing\n"
                      "<unknown>: note: context\n");
}

TEST(Diagnostics, MinSeverityFiltersCollectionButNotErrorCount) {
  DiagnosticEngine DE;
  DE.setMinSeverity(DiagKind::Warning);
  DE.note({1, 1}, "dropped");
  DE.warning({2, 2}, "kept");
  DE.error({3, 3}, "kept too");
  ASSERT_EQ(DE.all().size(), 2u);
  EXPECT_EQ(DE.all()[0].Kind, DiagKind::Warning);
  EXPECT_EQ(DE.all()[1].Kind, DiagKind::Error);
  EXPECT_EQ(DE.str(), "2:2: warning: kept\n3:3: error: kept too\n");

  // Errors-only mode: warnings and notes vanish from the rendering...
  DiagnosticEngine Strict;
  Strict.setMinSeverity(DiagKind::Error);
  Strict.warning({1, 1}, "gone");
  Strict.note({1, 2}, "gone");
  EXPECT_TRUE(Strict.all().empty());
  EXPECT_FALSE(Strict.hasErrors());
  // ...but the failure indicator can never be filtered away.
  Strict.error({9, 9}, "still fatal");
  EXPECT_TRUE(Strict.hasErrors());
  EXPECT_EQ(Strict.errorCount(), 1u);
  ASSERT_EQ(Strict.all().size(), 1u);
}

TEST(Diagnostics, SinkSeesFilteredStreamAtEmissionTime) {
  DiagnosticEngine DE;
  std::vector<std::string> Streamed;
  DE.setSink([&Streamed](const Diagnostic &D) {
    Streamed.push_back(D.str());
  });
  DE.setMinSeverity(DiagKind::Warning);
  DE.error({1, 1}, "first");
  DE.note({2, 2}, "never sunk"); // Below the filter: sink not called.
  DE.warning({3, 3}, "second");
  ASSERT_EQ(Streamed.size(), 2u);
  EXPECT_EQ(Streamed[0], "1:1: error: first");
  EXPECT_EQ(Streamed[1], "3:3: warning: second");
  // The engine still collected its own copies (sink is a tee, not a
  // redirect)...
  EXPECT_EQ(DE.all().size(), 2u);
  // ...and an empty function restores collect-only mode.
  DE.setSink({});
  DE.warning({4, 4}, "quiet");
  EXPECT_EQ(Streamed.size(), 2u);
  EXPECT_EQ(DE.all().size(), 3u);
}
