//===- tests/SupportTest.cpp - support layer unit tests --------*- C++ -*-===//

#include "support/ExtNat.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace tnt;

//===----------------------------------------------------------------------===//
// Integer helpers
//===----------------------------------------------------------------------===//

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(Lcm, Basics) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(-4, 6), 12);
  EXPECT_EQ(lcm64(0, 6), 0);
  EXPECT_EQ(lcm64(7, 13), 91);
}

TEST(FloorDiv, RoundsTowardNegInfinity) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
}

TEST(CeilDiv, RoundsTowardPosInfinity) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
}

TEST(FloorMod, NonNegative) {
  EXPECT_EQ(floorMod(7, 3), 1);
  EXPECT_EQ(floorMod(-7, 3), 2);
  EXPECT_EQ(floorMod(6, 3), 0);
  EXPECT_EQ(floorMod(-6, 3), 0);
}

TEST(HatMod, SymmetricInterval) {
  // hatMod(a, b) is congruent to a mod b and lies in (-b/2, b/2].
  for (int64_t A = -20; A <= 20; ++A) {
    for (int64_t B = 2; B <= 9; ++B) {
      int64_t H = hatMod(A, B);
      EXPECT_EQ(floorMod(H - A, B), 0) << A << " mod " << B;
      EXPECT_GT(2 * H, -B) << A << " mod " << B;
      EXPECT_LE(2 * H, B) << A << " mod " << B;
    }
  }
}

TEST(HatMod, UnitCoefficientProperty) {
  // For |a| = m-1: hatMod(a, m) == -sign(a); the modulus trick of the
  // Omega test relies on this.
  for (int64_t M = 3; M <= 12; ++M) {
    EXPECT_EQ(hatMod(M - 1, M), -1);
    EXPECT_EQ(hatMod(-(M - 1), M), 1);
  }
}

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(Rational, NormalizationAndSign) {
  Rational R(6, -4);
  EXPECT_EQ(R.num(), -3);
  EXPECT_EQ(R.den(), 2);
  EXPECT_TRUE(R.isNeg());
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_TRUE(Rational(3, 6) == Rational(1, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-3, 2).str(), "-3/2");
}

//===----------------------------------------------------------------------===//
// ExtNat: the N-infinity domain of Section 3
//===----------------------------------------------------------------------===//

TEST(ExtNat, Ordering) {
  ExtNat Zero(0), Five(5), Inf = ExtNat::infinity();
  EXPECT_LT(Zero, Five);
  EXPECT_LT(Five, Inf);
  EXPECT_FALSE(Inf < Inf);
  EXPECT_LE(Inf, Inf);
  EXPECT_TRUE(Inf == ExtNat::infinity());
}

TEST(ExtNat, Addition) {
  EXPECT_EQ(ExtNat(2) + ExtNat(3), ExtNat(5));
  EXPECT_TRUE((ExtNat(2) + ExtNat::infinity()).isInf());
  EXPECT_TRUE((ExtNat::infinity() + ExtNat::infinity()).isInf());
}

TEST(ExtNat, SubLowerPaperIdentities) {
  // L1 -L L2 == min{ r | r + L2 >= L1 }: never negative, inf -L inf == 0.
  EXPECT_EQ(ExtNat(5).subLower(ExtNat(3)), ExtNat(2));
  EXPECT_EQ(ExtNat(3).subLower(ExtNat(5)), ExtNat(0));
  EXPECT_EQ(ExtNat::infinity().subLower(ExtNat::infinity()), ExtNat(0));
  EXPECT_TRUE(ExtNat::infinity().subLower(ExtNat(7)).isInf());
  EXPECT_EQ(ExtNat(7).subLower(ExtNat::infinity()), ExtNat(0));
}

TEST(ExtNat, SubUpperPaperIdentities) {
  // U1 -U U2 == max{ r | r + U2 <= U1 }, defined iff U1 >= U2;
  // inf -U inf == inf.
  EXPECT_EQ(ExtNat(5).subUpper(ExtNat(3)), ExtNat(2));
  EXPECT_TRUE(ExtNat::infinity().subUpper(ExtNat::infinity()).isInf());
  EXPECT_TRUE(ExtNat::infinity().subUpper(ExtNat(3)).isInf());
  EXPECT_EQ(ExtNat(3).subUpper(ExtNat(3)), ExtNat(0));
}

TEST(ExtNat, SubLowerIsMinimalResidue) {
  // Exhaustively verify the defining property on a finite window.
  for (int64_t L1 = 0; L1 <= 10; ++L1)
    for (int64_t L2 = 0; L2 <= 10; ++L2) {
      ExtNat R = ExtNat(L1).subLower(ExtNat(L2));
      ASSERT_FALSE(R.isInf());
      // r + L2 >= L1 holds.
      EXPECT_GE(R.finite() + L2, L1);
      // Minimality: r-1 violates it (when r > 0).
      if (R.finite() > 0) {
        EXPECT_LT(R.finite() - 1 + L2, L1);
      }
    }
}

TEST(ExtNat, Str) {
  EXPECT_EQ(ExtNat(3).str(), "3");
  EXPECT_EQ(ExtNat::infinity().str(), "inf");
}
