//===- tests/VerifyTest.cpp - forward verifier unit tests -------*- C++ -*-===//

#include "lang/Parser.h"
#include "lang/Resolve.h"
#include "lang/Transforms.h"
#include "solver/Solver.h"
#include "verify/Verifier.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

/// Builds the pipeline up to verification for one source program.
struct Pipeline {
  DiagnosticEngine Diags, VDiags;
  Program P;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<HeapEnv> HEnv;
  UnkRegistry Reg;
  std::unique_ptr<Verifier> V;

  explicit Pipeline(const std::string &Src) {
    std::optional<Program> Parsed = parseProgram(Src, Diags);
    EXPECT_TRUE(Parsed.has_value()) << Diags.str();
    P = std::move(*Parsed);
    EXPECT_TRUE(resolveProgram(P, Diags)) << Diags.str();
    EXPECT_TRUE(lowerLoops(P, Diags)) << Diags.str();
    CG = std::make_unique<CallGraph>(CallGraph::build(P));
    HEnv = std::make_unique<HeapEnv>(P);
    V = std::make_unique<Verifier>(P, *CG, *HEnv, Reg, VDiags);
  }
};

const char *FooSrc = R"(
void foo(int x, int y)
{
  if (x < 0) return;
  else foo(x + y, y);
}
)";

} // namespace

TEST(Verify, FooAssumptionShapes) {
  Pipeline PL(FooSrc);
  auto Rs = PL.V->runGroup({"foo"});
  ASSERT_EQ(Rs.size(), 1u);
  const ScenarioAssumptions &A = Rs[0].Assumptions;
  EXPECT_FALSE(A.SafetyFailed);
  // One recursive pre-assumption (c2) and two post-assumptions (c1, c3).
  ASSERT_EQ(A.S.size(), 1u);
  ASSERT_EQ(A.T.size(), 2u);
  EXPECT_EQ(A.S[0].TK, PreAssume::Target::Unknown);
  EXPECT_EQ(A.S[0].Dst, A.PreId);
  // The recursive context entails x >= 0.
  Formula XGe0 =
      Formula::cmp(LinExpr::var(mkVar("x")), CmpKind::Ge, LinExpr(0));
  EXPECT_TRUE(Solver::entails(A.S[0].Ctx, XGe0));
  // Arguments are (x + y, y) over the canonical parameters.
  ASSERT_EQ(A.S[0].DstArgs.size(), 2u);
  Formula ArgIsSum = Formula::cmp(
      A.S[0].DstArgs[0], CmpKind::Eq,
      LinExpr::var(mkVar("x")) + LinExpr::var(mkVar("y")));
  EXPECT_TRUE(Solver::entails(A.S[0].Ctx, ArgIsSum));
  // One exit is the base case (no items), the other carries the callee
  // post item.
  bool SawBase = false, SawRec = false;
  for (const PostAssume &T : A.T) {
    if (T.Items.empty()) {
      SawBase = true;
      Formula XNeg =
          Formula::cmp(LinExpr::var(mkVar("x")), CmpKind::Lt, LinExpr(0));
      EXPECT_TRUE(Solver::entails(T.Ctx, XNeg));
    } else {
      SawRec = true;
      ASSERT_EQ(T.Items.size(), 1u);
      EXPECT_EQ(T.Items[0].K, PostItem::Kind::Unknown);
      EXPECT_EQ(T.Items[0].U, PL.Reg.partner(A.PreId));
    }
  }
  EXPECT_TRUE(SawBase);
  EXPECT_TRUE(SawRec);
}

TEST(Verify, InfeasibleBranchesPruned) {
  Pipeline PL(R"(
void m(int x)
{
  if (x > 0) {
    if (x < 0) { m(x); }
  }
  return;
}
)");
  auto Rs = PL.V->runGroup({"m"});
  // The recursive call sits in a contradictory branch: no
  // pre-assumptions survive (trivial-assumption filter, rule 1).
  EXPECT_TRUE(Rs[0].Assumptions.S.empty());
}

TEST(Verify, GivenTemporalSpecSkipsInference) {
  Pipeline PL(R"(
void busy(int n)
  requires n >= 0 & Term[n] ensures true;
{
  if (n == 0) return;
  else busy(n - 1);
}
)");
  auto Rs = PL.V->runGroup({"busy"});
  ASSERT_EQ(Rs.size(), 1u);
  ASSERT_TRUE(Rs[0].GivenTemporal.has_value());
  EXPECT_EQ(Rs[0].GivenTemporal->K, TemporalSpec::Kind::Term);
  EXPECT_EQ(Rs[0].Assumptions.PreId, InvalidUnk);
}

TEST(Verify, PrimitiveDefaultsToTerm) {
  Pipeline PL(R"(
void prim(int x)
  requires true ensures true;
void m() { prim(1); }
)");
  auto Rs = PL.V->runGroup({"prim"});
  ASSERT_EQ(Rs.size(), 1u);
  ASSERT_TRUE(Rs[0].GivenTemporal.has_value());
  EXPECT_EQ(Rs[0].GivenTemporal->K, TemporalSpec::Kind::Term);
}

TEST(Verify, ResolvedLoopCalleeBecomesFalseItem) {
  Pipeline PL(R"(
void lp(int x) { lp(x); }
void m() { lp(1); }
)");
  // Resolve lp as Loop by hand, then verify m.
  ResolvedScenario RS;
  RS.Safety = Verifier::defaultSpec();
  RS.Params = {mkVar("x")};
  CaseOutcome C;
  C.Guard = Formula::top();
  C.Temporal = TemporalSpec::loop();
  C.PostReachable = false;
  RS.Cases.push_back(C);
  PL.V->registerResolved("lp", {RS});

  auto Rs = PL.V->runGroup({"m"});
  ASSERT_EQ(Rs.size(), 1u);
  const ScenarioAssumptions &A = Rs[0].Assumptions;
  // Pre-assumption to Loop and a definitely-false post item at the exit.
  ASSERT_EQ(A.S.size(), 1u);
  EXPECT_EQ(A.S[0].TK, PreAssume::Target::Loop);
  ASSERT_EQ(A.T.size(), 1u);
  ASSERT_EQ(A.T[0].Items.size(), 1u);
  EXPECT_EQ(A.T[0].Items[0].K, PostItem::Kind::False);
}

TEST(Verify, RefParamPostApplied) {
  Pipeline PL(R"(
void bump(ref int x)
  requires true & Term ensures x' = x + 1;
void m(int a)
{
  a = 0;
  bump(a);
  assume(true);
}
)");
  auto Rs = PL.V->runGroup({"m"});
  ASSERT_EQ(Rs.size(), 1u);
  ASSERT_EQ(Rs[0].Assumptions.T.size(), 1u);
  // At the exit, a == 1 must be derivable from the callee's post.
  const PostAssume &T = Rs[0].Assumptions.T[0];
  // Find m's exit context and check it has a variable constrained to 1.
  EXPECT_NE(Solver::isSat(T.Ctx), Tri::False);
}

TEST(Verify, NondetBranchesTagged) {
  Pipeline PL(R"(
void m(int x)
{
  if (nondet_bool()) return;
  else m(x);
}
)");
  auto Rs = PL.V->runGroup({"m"});
  const ScenarioAssumptions &A = Rs[0].Assumptions;
  // Both the exit and the recursion carry (complementary) choice tags.
  ASSERT_EQ(A.S.size(), 1u);
  ASSERT_EQ(A.S[0].Choices.size(), 1u);
  bool RecTaken = A.S[0].Choices.begin()->second;
  bool SawExitWithOpposite = false;
  for (const PostAssume &T : A.T)
    for (const auto &[Tag, B] : T.Choices)
      if (B != RecTaken)
        SawExitWithOpposite = true;
  EXPECT_TRUE(SawExitWithOpposite);
}

TEST(Verify, PostconditionFailureFlagged) {
  Pipeline PL(R"(
int bad(int x)
  requires true ensures res = x + 1;
{
  return x;
}
)");
  auto Rs = PL.V->runGroup({"bad"});
  EXPECT_TRUE(Rs[0].Assumptions.SafetyFailed);
  EXPECT_TRUE(PL.VDiags.hasErrors());
}

TEST(Verify, MemoryErrorFlagged) {
  Pipeline PL(R"(
data node { node next; }
void m(node x) { x.next = null; }
)");
  // No heap describes x: the field assignment is unsafe.
  auto Rs = PL.V->runGroup({"m"});
  EXPECT_TRUE(Rs[0].Assumptions.SafetyFailed);
}

TEST(Verify, CanonicalParamsIncludeGhosts) {
  Pipeline PL(R"(
data node { node next; }
pred lseg(root, q, n) == root = q & n = 0
  or root |-> node(p) * lseg(p, q, n - 1);
void walk(node x)
  requires lseg(x, null, n) ensures true;
{ if (x == null) return; else walk(x.next); }
)");
  const MethodDecl *M = PL.P.findMethod("walk");
  std::vector<VarId> Canon = Verifier::canonicalParams(*M, M->Specs[0]);
  ASSERT_EQ(Canon.size(), 2u);
  EXPECT_EQ(varName(Canon[0]), "x");
  EXPECT_EQ(varName(Canon[1]), "n");
}
