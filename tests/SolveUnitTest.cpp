//===- tests/SolveUnitTest.cpp - solve components in isolation --*- C++ -*-===//

#include "infer/CaseSplit.h"
#include "infer/Graph.h"
#include "infer/Solve.h"
#include "solver/Solver.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

LinExpr ex(const char *N) { return LinExpr::var(mkVar(N)); }

Formula cmpf(const char *V, CmpKind K, int64_t C) {
  return Formula::cmp(ex(V), K, LinExpr(C));
}

} // namespace

//===----------------------------------------------------------------------===//
// splitConditions (Section 5.6's split)
//===----------------------------------------------------------------------===//

TEST(SplitConditions, SingleConditionGetsComplement) {
  std::vector<Formula> Mu =
      splitConditions({cmpf("sy", CmpKind::Ge, 0)});
  ASSERT_EQ(Mu.size(), 2u);
  // Exclusive and exhaustive.
  EXPECT_EQ(Solver::isSat(Formula::conj2(Mu[0], Mu[1])), Tri::False);
  EXPECT_EQ(Solver::isSat(Formula::neg(Formula::disj2(Mu[0], Mu[1]))),
            Tri::False);
}

TEST(SplitConditions, OverlappingPartitioned) {
  // x >= 0 and x <= 5 overlap in [0,5].
  std::vector<Formula> Mu = splitConditions(
      {cmpf("sx", CmpKind::Ge, 0), cmpf("sx", CmpKind::Le, 5)});
  ASSERT_GE(Mu.size(), 2u);
  // Pairwise exclusive.
  for (size_t I = 0; I < Mu.size(); ++I)
    for (size_t J = I + 1; J < Mu.size(); ++J)
      EXPECT_EQ(Solver::isSat(Formula::conj2(Mu[I], Mu[J])), Tri::False)
          << Mu[I].str() << " vs " << Mu[J].str();
  // Exhaustive.
  std::vector<Formula> Negs;
  for (const Formula &M : Mu)
    Negs.push_back(Formula::neg(M));
  EXPECT_EQ(Solver::isSat(Formula::conj(Negs)), Tri::False);
}

TEST(SplitConditions, DisjointKeptApart) {
  std::vector<Formula> Mu = splitConditions(
      {cmpf("sz", CmpKind::Le, -1), cmpf("sz", CmpKind::Ge, 1)});
  // Three cells: below, above, and the gap {0}.
  EXPECT_EQ(Mu.size(), 3u);
}

TEST(SplitConditions, EmptyInputEmptyOutput) {
  EXPECT_TRUE(splitConditions({}).empty());
}

//===----------------------------------------------------------------------===//
// Theta
//===----------------------------------------------------------------------===//

TEST(Theta, RefineBaseShape) {
  UnkRegistry Reg;
  Theta Th(Reg);
  UnkId Pre = Reg.createPair("m", 0, {mkVar("tx")});
  Th.init(Pre);
  EXPECT_TRUE(Th.isPendingLeaf(Pre));
  Formula Base = cmpf("tx", CmpKind::Lt, 0);
  std::vector<UnkId> Subs =
      Th.refineBase(Pre, Base, {cmpf("tx", CmpKind::Ge, 0)});
  ASSERT_EQ(Subs.size(), 1u);
  EXPECT_FALSE(Th.isPendingLeaf(Pre));
  EXPECT_TRUE(Th.isPendingLeaf(Subs[0]));
  EXPECT_FALSE(Th.fullyResolved(Pre));
  // The sub's region is the mu guard.
  EXPECT_TRUE(Solver::entails(Th.region(Subs[0]),
                              cmpf("tx", CmpKind::Ge, 0)));
  Th.resolve(Subs[0], DefCase::Kind::Loop);
  EXPECT_TRUE(Th.fullyResolved(Pre));

  CaseTree Tree = Th.toTree(Pre);
  std::vector<CaseOutcome> Flat = Tree.flatten();
  ASSERT_EQ(Flat.size(), 2u);
  EXPECT_EQ(Flat[0].Temporal.K, TemporalSpec::Kind::Term);
  EXPECT_EQ(Flat[1].Temporal.K, TemporalSpec::Kind::Loop);
  EXPECT_FALSE(Flat[1].PostReachable);
}

TEST(Theta, FinalizePendingToMayLoop) {
  UnkRegistry Reg;
  Theta Th(Reg);
  UnkId Pre = Reg.createPair("m", 0, {mkVar("tx")});
  Th.init(Pre);
  std::vector<UnkId> Subs = Th.split(
      Pre, {cmpf("tx", CmpKind::Ge, 0), cmpf("tx", CmpKind::Lt, 0)});
  Th.resolve(Subs[0], DefCase::Kind::Term, {ex("tx")});
  Th.finalize(Pre);
  EXPECT_TRUE(Th.fullyResolved(Pre));
  std::vector<CaseOutcome> Flat = Th.toTree(Pre).flatten();
  ASSERT_EQ(Flat.size(), 2u);
  EXPECT_EQ(Flat[1].Temporal.K, TemporalSpec::Kind::MayLoop);
}

//===----------------------------------------------------------------------===//
// Specialization (spec_relass, Section 5.2)
//===----------------------------------------------------------------------===//

TEST(Specialize, PreAssumptionSplitsOnTargetCases) {
  UnkRegistry Reg;
  Theta Th(Reg);
  VarId X = mkVar("spx");
  UnkId Pre = Reg.createPair("m", 0, {X});
  Th.init(Pre);
  // Refine: x < 0 base Term; x >= 0 pending.
  std::vector<UnkId> Subs =
      Th.refineBase(Pre, cmpf("spx", CmpKind::Lt, 0),
                    {cmpf("spx", CmpKind::Ge, 0)});

  // The foo-style recursive assumption: ctx x>=0, args (x - 1).
  PreAssume A;
  A.Ctx = cmpf("spx", CmpKind::Ge, 0);
  A.Src = Pre;
  A.TK = PreAssume::Target::Unknown;
  A.Dst = Pre;
  A.DstArgs = {ex("spx") - 1};

  std::vector<PreAssume> Out = specializePre({A}, Reg, Th);
  // Source expands to the pending sub; target splits into the Term base
  // (x - 1 < 0) and the pending case (x - 1 >= 0).
  ASSERT_EQ(Out.size(), 2u);
  bool SawTerm = false, SawUnknown = false;
  for (const PreAssume &N : Out) {
    EXPECT_EQ(N.Src, Subs[0]);
    if (N.TK == PreAssume::Target::Term)
      SawTerm = true;
    if (N.TK == PreAssume::Target::Unknown) {
      SawUnknown = true;
      EXPECT_EQ(N.Dst, Subs[0]);
      // Context now carries x - 1 >= 0.
      EXPECT_TRUE(Solver::entails(N.Ctx, cmpf("spx", CmpKind::Ge, 1)));
    }
  }
  EXPECT_TRUE(SawTerm);
  EXPECT_TRUE(SawUnknown);
}

TEST(Specialize, InfeasibleCasesDropped) {
  UnkRegistry Reg;
  Theta Th(Reg);
  VarId X = mkVar("spx");
  UnkId Pre = Reg.createPair("m", 0, {X});
  Th.init(Pre);
  Th.refineBase(Pre, cmpf("spx", CmpKind::Lt, 0),
                {cmpf("spx", CmpKind::Ge, 0)});
  PreAssume A;
  A.Ctx = Formula::conj2(cmpf("spx", CmpKind::Ge, 0),
                         cmpf("spx", CmpKind::Le, 3));
  A.Src = Pre;
  A.TK = PreAssume::Target::Unknown;
  A.Dst = Pre;
  A.DstArgs = {ex("spx") + 10}; // Always lands in the x >= 0 case.
  std::vector<PreAssume> Out = specializePre({A}, Reg, Th);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].TK, PreAssume::Target::Unknown);
}

TEST(Specialize, PostItemsExpandAgainstDefinitions) {
  UnkRegistry Reg;
  Theta Th(Reg);
  VarId X = mkVar("spx");
  UnkId CalleePre = Reg.createPair("c", 0, {X});
  UnkId CallerPre = Reg.createPair("m", 0, {X});
  Th.init(CalleePre);
  Th.init(CallerPre);
  Th.resolve(CalleePre, DefCase::Kind::Loop);

  PostAssume A;
  A.Ctx = Formula::top();
  PostItem It;
  It.Guard = Formula::top();
  It.K = PostItem::Kind::Unknown;
  It.U = Reg.partner(CalleePre);
  It.Args = {ex("spx")};
  A.Items.push_back(It);
  A.Guard = Formula::top();
  A.Tgt = Reg.partner(CallerPre);

  std::vector<PostAssume> Out = specializePost({A}, Reg, Th);
  ASSERT_EQ(Out.size(), 1u);
  ASSERT_EQ(Out[0].Items.size(), 1u);
  EXPECT_EQ(Out[0].Items[0].K, PostItem::Kind::False);
}

//===----------------------------------------------------------------------===//
// syn_base (Section 5.1)
//===----------------------------------------------------------------------===//

TEST(SynBase, FooBaseCase) {
  UnkRegistry Reg;
  VarId X = mkVar("sbx"), Y = mkVar("sby");
  UnkId Pre = Reg.createPair("foo", 0, {X, Y});

  ScenarioProblem P;
  P.PreId = Pre;
  PreAssume Rec;
  Rec.Ctx = cmpf("sbx", CmpKind::Ge, 0);
  Rec.Src = Pre;
  Rec.TK = PreAssume::Target::Unknown;
  Rec.Dst = Pre;
  Rec.DstArgs = {ex("sbx") + ex("sby"), ex("sby")};
  P.S.push_back(Rec);
  PostAssume Base;
  Base.Ctx = cmpf("sbx", CmpKind::Lt, 0);
  Base.Guard = Formula::top();
  Base.Tgt = Reg.partner(Pre);
  P.T.push_back(Base);

  Formula B = synBase(P, Reg);
  // Exactly x < 0 (the paper: x<0 && !(x>=0)).
  EXPECT_TRUE(Solver::entails(B, cmpf("sbx", CmpKind::Lt, 0)));
  EXPECT_TRUE(Solver::entails(cmpf("sbx", CmpKind::Lt, 0), B));
}

TEST(SynBase, NoExitMeansNoBase) {
  UnkRegistry Reg;
  VarId X = mkVar("sbx");
  UnkId Pre = Reg.createPair("lp", 0, {X});
  ScenarioProblem P;
  P.PreId = Pre;
  PreAssume Rec;
  Rec.Ctx = Formula::top();
  Rec.Src = Pre;
  Rec.TK = PreAssume::Target::Unknown;
  Rec.Dst = Pre;
  Rec.DstArgs = {ex("sbx")};
  P.S.push_back(Rec);
  Formula B = synBase(P, Reg);
  EXPECT_EQ(Solver::isSat(B), Tri::False);
}

//===----------------------------------------------------------------------===//
// Temporal reachability graph
//===----------------------------------------------------------------------===//

TEST(TemporalGraph, SccsBottomUp) {
  UnkRegistry Reg;
  VarId X = mkVar("tgx");
  UnkId A = Reg.createPair("a", 0, {X});
  UnkId B = Reg.createPair("b", 0, {X});
  // a -> b, b -> b (self loop): sccs bottom-up: {b} then {a}.
  PreAssume AB;
  AB.Ctx = Formula::top();
  AB.Src = A;
  AB.TK = PreAssume::Target::Unknown;
  AB.Dst = B;
  AB.DstArgs = {ex("tgx")};
  PreAssume BB = AB;
  BB.Src = B;
  std::vector<PreAssume> S{AB, BB};
  TemporalGraph G = TemporalGraph::build(S, {A, B});
  ASSERT_EQ(G.sccs().size(), 2u);
  EXPECT_EQ(G.sccs()[0], std::vector<UnkId>{B});
  EXPECT_EQ(G.sccs()[1], std::vector<UnkId>{A});
  EXPECT_EQ(G.edges(A).size(), 1u);
  EXPECT_EQ(G.edges(B).size(), 1u);
}
