//===- tests/ApiTest.cpp - public facade behavior ---------------*- C++ -*-===//

#include "api/Analyzer.h"

#include <gtest/gtest.h>

using namespace tnt;

TEST(Api, ParseErrorReported) {
  AnalysisResult R = analyzeProgram("void m( {");
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Diagnostics.empty());
  EXPECT_EQ(R.outcome("m"), Outcome::Unknown);
}

TEST(Api, MissingEntryIsUnknown) {
  AnalysisResult R = analyzeProgram("void m() { return; }");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.outcome("nonexistent"), Outcome::Unknown);
  EXPECT_EQ(R.outcome("m"), Outcome::Yes);
}

TEST(Api, FindByScenario) {
  AnalysisResult R = analyzeProgram(R"(
data node { node next; }
pred lseg(root, q, n) == root = q & n = 0
  or root |-> node(p) * lseg(p, q, n - 1);
void w(node x)
  requires lseg(x, null, n) ensures true;
  requires true ensures true;
{ return; }
)");
  ASSERT_TRUE(R.Ok) << R.Diagnostics;
  EXPECT_NE(R.find("w", 0), nullptr);
  EXPECT_NE(R.find("w", 1), nullptr);
  EXPECT_EQ(R.find("w", 2), nullptr);
}

TEST(Api, StrRendersSummaries) {
  AnalysisResult R = analyzeProgram("void m(int x) { return; }");
  EXPECT_NE(R.str().find("Term"), std::string::npos);
}

TEST(Api, FuelAndTimeReported) {
  AnalysisResult R = analyzeProgram(R"(
void cd(int n) { if (n <= 0) return; else cd(n - 1); }
)");
  EXPECT_GT(R.FuelUsed, 0u);
  EXPECT_GT(R.Millis, 0.0);
  EXPECT_FALSE(R.BailedOut);
}

TEST(Api, DeterministicAcrossRuns) {
  const char *Src = R"(
void foo(int x, int y)
{
  if (x < 0) return;
  else foo(x + y, y);
}
)";
  AnalysisResult A = analyzeProgram(Src);
  AnalysisResult B = analyzeProgram(Src);
  ASSERT_TRUE(A.Ok);
  ASSERT_TRUE(B.Ok);
  ASSERT_EQ(A.Methods.size(), B.Methods.size());
  // Same structure and classifications.
  std::vector<CaseOutcome> FA = A.Methods[0].Summary.flatten();
  std::vector<CaseOutcome> FB = B.Methods[0].Summary.flatten();
  ASSERT_EQ(FA.size(), FB.size());
  for (size_t I = 0; I < FA.size(); ++I) {
    EXPECT_EQ(FA[I].Temporal.K, FB[I].Temporal.K);
    EXPECT_EQ(FA[I].PostReachable, FB[I].PostReachable);
    EXPECT_TRUE(FA[I].Guard.structEq(FB[I].Guard));
  }
}

TEST(Api, MultipleMethodsAllSummarized) {
  AnalysisResult R = analyzeProgram(R"(
void a() { return; }
void b(int x) { if (x > 0) b(x - 1); }
void c() { a(); b(5); }
)");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Methods.size(), 3u);
  EXPECT_EQ(R.outcome("c"), Outcome::Yes);
}

TEST(Api, LoopMethodSummariesExposed) {
  AnalysisResult R = analyzeProgram(
      "void m(int i) { while (i > 0) { i = i - 1; } }");
  ASSERT_TRUE(R.Ok);
  // The synthesized loop method appears alongside the wrapper.
  bool SawLoopMethod = false;
  for (const MethodResult &M : R.Methods)
    if (M.Method.find("_loop") != std::string::npos)
      SawLoopMethod = true;
  EXPECT_TRUE(SawLoopMethod);
}
