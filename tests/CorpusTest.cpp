//===- tests/CorpusTest.cpp - corpus integrity and soundness ----*- C++ -*-===//

#include "baselines/Baselines.h"
#include "lang/Parser.h"
#include "lang/Resolve.h"
#include "lang/Transforms.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

using namespace tnt;

TEST(Corpus, CategorySizesMatchPaper) {
  EXPECT_EQ(byCategory("crafted").size(), 39u);
  EXPECT_EQ(byCategory("crafted-lit").size(), 150u);
  EXPECT_EQ(byCategory("numeric").size(), 68u);
  EXPECT_EQ(byCategory("memory-alloca").size(), 81u);
  EXPECT_EQ(corpus().size(), 39u + 150u + 68u + 81u);
  EXPECT_EQ(loopBasedPrograms().size(), 221u);
}

TEST(Corpus, NamesUnique) {
  std::set<std::string> Names;
  for (const BenchProgram &P : corpus())
    EXPECT_TRUE(Names.insert(P.Name).second) << P.Name;
}

TEST(Corpus, EveryProgramParsesAndResolves) {
  for (const BenchProgram &P : corpus()) {
    DiagnosticEngine Diags;
    std::optional<Program> Parsed = parseProgram(P.Source, Diags);
    ASSERT_TRUE(Parsed.has_value()) << P.Name << "\n" << Diags.str();
    EXPECT_TRUE(resolveProgram(*Parsed, Diags))
        << P.Name << "\n" << Diags.str();
    EXPECT_TRUE(lowerLoops(*Parsed, Diags)) << P.Name << "\n" << Diags.str();
    EXPECT_NE(Parsed->findMethod(P.Entry), nullptr) << P.Name;
  }
}

TEST(Corpus, GroundTruthMixPresent) {
  // Every category has both terminating and (except numeric)
  // non-terminating programs.
  for (const char *Cat : {"crafted", "crafted-lit", "memory-alloca"}) {
    bool SawT = false, SawN = false;
    for (const BenchProgram *P : byCategory(Cat)) {
      SawT |= P->GroundTruth == Truth::Terminating;
      SawN |= P->GroundTruth == Truth::NonTerminating;
    }
    EXPECT_TRUE(SawT) << Cat;
    EXPECT_TRUE(SawN) << Cat;
  }
}

TEST(Corpus, SoundAnswerMatrix) {
  BenchProgram P;
  P.GroundTruth = Truth::Terminating;
  EXPECT_TRUE(soundAnswer(P, Outcome::Yes));
  EXPECT_FALSE(soundAnswer(P, Outcome::No));
  EXPECT_TRUE(soundAnswer(P, Outcome::Unknown));
  P.GroundTruth = Truth::NonTerminating;
  EXPECT_FALSE(soundAnswer(P, Outcome::Yes));
  EXPECT_TRUE(soundAnswer(P, Outcome::No));
  P.GroundTruth = Truth::Open;
  EXPECT_TRUE(soundAnswer(P, Outcome::Yes));
  EXPECT_TRUE(soundAnswer(P, Outcome::No));
}

TEST(Corpus, BaselineConfigsDiffer) {
  EXPECT_FALSE(termOnlyConfig().Solve.EnableNonTermProof);
  EXPECT_TRUE(alternateConfig().Solve.EnableNonTermProof);
  EXPECT_FALSE(alternateConfig().Solve.EnableAbduction);
  EXPECT_FALSE(monolithicConfig().Modular);
  // The paper's tool never times out; comparator classes treat a
  // budget-exhausted undecided run as T/O and carry tight budgets.
  EXPECT_FALSE(hipTntPlusConfig().BailoutIsTimeout);
  EXPECT_TRUE(termOnlyConfig().BailoutIsTimeout);
  EXPECT_TRUE(alternateConfig().BailoutIsTimeout);
  EXPECT_TRUE(monolithicConfig().BailoutIsTimeout);
  EXPECT_LT(termOnlyConfig().Solve.GroupFuel,
            hipTntPlusConfig().Solve.GroupFuel);
}

// Spot-check the engine on a few corpus programs of each category
// (parameterized over indices to keep runtime modest).
class CorpusSpot : public ::testing::TestWithParam<unsigned> {};

TEST_P(CorpusSpot, HipTntSoundOnSample) {
  const std::vector<BenchProgram> &All = corpus();
  // A deterministic stride through the corpus.
  const BenchProgram &P = All[(GetParam() * 17) % All.size()];
  AnalysisResult R = analyzeProgram(P.Source, hipTntPlusConfig());
  ASSERT_TRUE(R.Ok) << P.Name << "\n" << R.Diagnostics;
  Outcome O = R.outcome(P.Entry);
  EXPECT_TRUE(soundAnswer(P, O)) << P.Name << " answered "
                                 << outcomeStr(O);
}

INSTANTIATE_TEST_SUITE_P(Sample, CorpusSpot, ::testing::Range(0u, 20u));
