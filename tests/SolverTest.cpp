//===- tests/SolverTest.cpp - Omega test and solver facade -----*- C++ -*-===//

#include "solver/Model.h"
#include "solver/Solver.h"

#include <gtest/gtest.h>

#include <random>

using namespace tnt;

namespace {

VarId X() { return mkVar("sx"); }
VarId Y() { return mkVar("sy"); }
VarId Z() { return mkVar("sz"); }

LinExpr ex(VarId V) { return LinExpr::var(V); }

Constraint le(const LinExpr &L, const LinExpr &R) {
  return Constraint::make(L, CmpKind::Le, R);
}
Constraint ge(const LinExpr &L, const LinExpr &R) {
  return Constraint::make(L, CmpKind::Ge, R);
}
Constraint eq(const LinExpr &L, const LinExpr &R) {
  return Constraint::make(L, CmpKind::Eq, R);
}

} // namespace

//===----------------------------------------------------------------------===//
// Omega: conjunction satisfiability
//===----------------------------------------------------------------------===//

TEST(Omega, EmptyConjIsSat) {
  EXPECT_EQ(Omega::isSatConj({}), Tri::True);
}

TEST(Omega, SimpleBounds) {
  // 0 <= x <= 5.
  EXPECT_EQ(Omega::isSatConj({ge(ex(X()), LinExpr(0)), le(ex(X()), LinExpr(5))}),
            Tri::True);
  // x <= 0 && x >= 5.
  EXPECT_EQ(Omega::isSatConj({le(ex(X()), LinExpr(0)), ge(ex(X()), LinExpr(5))}),
            Tri::False);
}

TEST(Omega, GcdRefutation) {
  // 2x = 1.
  EXPECT_EQ(Omega::isSatConj({eq(ex(X()) * 2, LinExpr(1))}), Tri::False);
  // 6x + 3y = 2.
  EXPECT_EQ(
      Omega::isSatConj({eq(ex(X()) * 6 + ex(Y()) * 3, LinExpr(2))}),
      Tri::False);
}

TEST(Omega, EqualitySubstitution) {
  // x = y + 1 && x <= 0 && y >= 0: unsat.
  EXPECT_EQ(Omega::isSatConj({eq(ex(X()), ex(Y()) + 1),
                              le(ex(X()), LinExpr(0)),
                              ge(ex(Y()), LinExpr(0))}),
            Tri::False);
  // x = y + 1 && x >= 0: sat.
  EXPECT_EQ(Omega::isSatConj({eq(ex(X()), ex(Y()) + 1),
                              ge(ex(X()), LinExpr(0))}),
            Tri::True);
}

TEST(Omega, NonUnitEqualityModTrick) {
  // 3x + 5y = 1 is solvable over Z (x=2, y=-1).
  EXPECT_EQ(Omega::isSatConj({eq(ex(X()) * 3 + ex(Y()) * 5, LinExpr(1))}),
            Tri::True);
  // 3x + 5y = 1 with 0 <= x,y <= 1: only (x,y) in {0,1}^2; 3x+5y in
  // {0,3,5,8}: unsat.
  EXPECT_EQ(Omega::isSatConj({eq(ex(X()) * 3 + ex(Y()) * 5, LinExpr(1)),
                              ge(ex(X()), LinExpr(0)), le(ex(X()), LinExpr(1)),
                              ge(ex(Y()), LinExpr(0)), le(ex(Y()), LinExpr(1))}),
            Tri::False);
}

TEST(Omega, DarkShadowIntegerGap) {
  // 27 <= 8x <= 30 has no integer solution (no multiple of 8 in range),
  // though the rational shadow is satisfiable. Exercises dark shadow /
  // splinters.
  EXPECT_EQ(Omega::isSatConj({ge(ex(X()) * 8, LinExpr(27)),
                              le(ex(X()) * 8, LinExpr(30))}),
            Tri::False);
  // 27 <= 8x <= 32 includes 32 = 8*4: sat.
  EXPECT_EQ(Omega::isSatConj({ge(ex(X()) * 8, LinExpr(27)),
                              le(ex(X()) * 8, LinExpr(32))}),
            Tri::True);
}

TEST(Omega, ClassicOmegaExample) {
  // From Pugh's paper: 3x + 4y = 1, 1 <= x <= 3, 1 <= y <= 3 — the
  // equality forces (x,y) = (3,-2) mod lattice; with both in [1,3]
  // 3x+4y ranges over {7..21} with specific residues; 3*3+4*(-2)=1 but
  // y=-2 is out of range: unsat.
  EXPECT_EQ(Omega::isSatConj({eq(ex(X()) * 3 + ex(Y()) * 4, LinExpr(1)),
                              ge(ex(X()), LinExpr(1)), le(ex(X()), LinExpr(3)),
                              ge(ex(Y()), LinExpr(1)), le(ex(Y()), LinExpr(3))}),
            Tri::False);
}

TEST(Omega, ThreeVarChain) {
  // x < y < z && z < x: unsat.
  EXPECT_EQ(Omega::isSatConj({Constraint::make(ex(X()), CmpKind::Lt, ex(Y())),
                              Constraint::make(ex(Y()), CmpKind::Lt, ex(Z())),
                              Constraint::make(ex(Z()), CmpKind::Lt, ex(X()))}),
            Tri::False);
}

TEST(Omega, UnboundedVariableDropped) {
  // y only lower-bounded; x constrained normally.
  EXPECT_EQ(Omega::isSatConj({ge(ex(Y()), ex(X())), ge(ex(X()), LinExpr(0)),
                              le(ex(X()), LinExpr(3))}),
            Tri::True);
}

//===----------------------------------------------------------------------===//
// Omega: projection
//===----------------------------------------------------------------------===//

TEST(OmegaProjection, ViaEquality) {
  // exists x. x = y + 1 && x <= 5  ==>  y <= 4 (exact).
  Omega::Projection P = Omega::projectVar(
      {eq(ex(X()), ex(Y()) + 1), le(ex(X()), LinExpr(5))}, X());
  EXPECT_TRUE(P.Exact);
  ASSERT_EQ(P.Conj.size(), 1u);
  EXPECT_TRUE(P.Conj[0].eval({{Y(), 4}}));
  EXPECT_FALSE(P.Conj[0].eval({{Y(), 5}}));
}

TEST(OmegaProjection, FourierMotzkinPair) {
  // exists x. y <= x && x <= z  ==>  y <= z (exact, unit coefficients).
  Omega::Projection P =
      Omega::projectVar({ge(ex(X()), ex(Y())), le(ex(X()), ex(Z()))}, X());
  EXPECT_TRUE(P.Exact);
  ASSERT_EQ(P.Conj.size(), 1u);
  EXPECT_TRUE(P.Conj[0].eval({{Y(), 2}, {Z(), 2}}));
  EXPECT_FALSE(P.Conj[0].eval({{Y(), 3}, {Z(), 2}}));
}

TEST(OmegaProjection, InexactFlagged) {
  // exists x. 2x >= y && 2x <= z: real shadow is z >= y but over Z the
  // projection requires an even number between them; must be flagged
  // inexact.
  Omega::Projection P = Omega::projectVar(
      {ge(ex(X()) * 2, ex(Y())), le(ex(X()) * 2, ex(Z()))}, X());
  EXPECT_FALSE(P.Exact);
}

TEST(OmegaProjection, MultiVar) {
  // exists x,y. 0 <= x <= y && y <= z  ==>  z >= 0.
  Omega::Projection P = Omega::projectVars(
      {ge(ex(X()), LinExpr(0)), le(ex(X()), ex(Y())), le(ex(Y()), ex(Z()))},
      {X(), Y()});
  EXPECT_TRUE(P.Exact);
  bool SawZBound = false;
  for (const Constraint &C : P.Conj)
    if (C.eval({{Z(), 0}}) && !C.eval({{Z(), -1}}))
      SawZBound = true;
  EXPECT_TRUE(SawZBound);
}

TEST(OmegaDropRedundant, RemovesImplied) {
  // {x >= 0, x >= -5} -> {x >= 0}.
  ConstraintConj Out = Omega::dropRedundant(
      {ge(ex(X()), LinExpr(0)), ge(ex(X()), LinExpr(-5))});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FALSE(Out[0].eval({{X(), -1}}));
  EXPECT_TRUE(Out[0].eval({{X(), 0}}));
}

//===----------------------------------------------------------------------===//
// Solver facade
//===----------------------------------------------------------------------===//

TEST(Solver, SatThroughDisjunction) {
  Formula F = Formula::disj2(
      Formula::conj2(Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0)),
                     Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(5))),
      Formula::cmp(ex(X()), CmpKind::Eq, LinExpr(7)));
  EXPECT_EQ(Solver::isSat(F), Tri::True);
}

TEST(Solver, UnsatAllBranches) {
  Formula F = Formula::conj2(
      Formula::cmp(ex(X()), CmpKind::Ne, LinExpr(0)),
      Formula::conj2(Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(0)),
                     Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0))));
  EXPECT_EQ(Solver::isSat(F), Tri::False);
}

TEST(Solver, Implies) {
  Formula A = Formula::conj2(Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(1)),
                             Formula::cmp(ex(Y()), CmpKind::Ge, ex(X())));
  Formula B = Formula::cmp(ex(Y()), CmpKind::Ge, LinExpr(1));
  EXPECT_EQ(Solver::implies(A, B), Tri::True);
  EXPECT_EQ(Solver::implies(B, A), Tri::False);
  EXPECT_TRUE(Solver::entails(A, B));
}

TEST(Solver, ImpliesWithNegationAndExists) {
  // x >= 1 implies exists k . x = k + 1 && k >= 0.
  VarId K = mkVar("sk");
  Formula A = Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(1));
  Formula B = Formula::exists(
      {K}, Formula::conj2(Formula::cmp(ex(X()), CmpKind::Eq, ex(K) + 1),
                          Formula::cmp(ex(K), CmpKind::Ge, LinExpr(0))));
  EXPECT_EQ(Solver::implies(A, B), Tri::True);
}

TEST(Solver, EliminateSingleVar) {
  // exists y . x <= y && y <= 10: gives x <= 10.
  Formula F = Formula::conj2(Formula::cmp(ex(X()), CmpKind::Le, ex(Y())),
                             Formula::cmp(ex(Y()), CmpKind::Le, LinExpr(10)));
  Solver::ElimResult R = Solver::eliminate(F, {Y()});
  EXPECT_TRUE(R.Exact);
  EXPECT_TRUE(Solver::entails(R.F, Formula::cmp(ex(X()), CmpKind::Le,
                                                LinExpr(10))));
  EXPECT_TRUE(Solver::entails(Formula::cmp(ex(X()), CmpKind::Le, LinExpr(10)),
                              R.F));
}

TEST(Solver, SimplifyDropsUnsatDisjunct) {
  Formula Dead = Formula::conj2(Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(1)),
                                Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0)));
  Formula Live = Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(5));
  Formula S = Solver::simplify(Formula::disj2(Dead, Live));
  EXPECT_TRUE(S.structEq(Live) || Solver::entails(S, Live));
  EXPECT_EQ(Solver::isSat(Formula::conj2(S, Formula::neg(Live))), Tri::False);
}

TEST(Solver, SimplifyDropsSubsumedDisjunct) {
  Formula Narrow = Formula::conj2(
      Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(2)),
      Formula::cmp(ex(X()), CmpKind::Le, LinExpr(3)));
  Formula Wide = Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(0));
  Formula S = Solver::simplify(Formula::disj2(Narrow, Wide));
  // Result must be equivalent to Wide.
  EXPECT_TRUE(Solver::entails(S, Wide));
  EXPECT_TRUE(Solver::entails(Wide, S));
}

TEST(Solver, StatsCount) {
  Solver::resetStats();
  Formula F = Formula::cmp(ex(X()), CmpKind::Le, LinExpr(0));
  (void)Solver::isSat(F);
  (void)Solver::isSat(F);
  Solver::Stats St = Solver::stats();
  EXPECT_GE(St.SatQueries, 2u);
  EXPECT_GE(St.CacheHits, 1u);
}

//===----------------------------------------------------------------------===//
// Model search
//===----------------------------------------------------------------------===//

TEST(Model, FindsWitness) {
  Formula F = Formula::conj2(Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(2)),
                             Formula::cmp(ex(X()), CmpKind::Le, LinExpr(3)));
  std::optional<Model> M = findModel(F, 5);
  ASSERT_TRUE(M.has_value());
  EXPECT_TRUE(F.eval(*M));
}

TEST(Model, NoWitnessInBox) {
  Formula F = Formula::cmp(ex(X()), CmpKind::Ge, LinExpr(100));
  EXPECT_FALSE(findModel(F, 5).has_value());
}

//===----------------------------------------------------------------------===//
// Property test: Omega agrees with exhaustive search on boxed random
// conjunctions.
//===----------------------------------------------------------------------===//

namespace {

struct BoxedCase {
  unsigned Seed;
};

class OmegaVsEnumeration : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(OmegaVsEnumeration, Agree) {
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<int> CoefD(-4, 4);
  std::uniform_int_distribution<int> ConstD(-6, 6);
  std::uniform_int_distribution<int> NumConD(1, 4);
  std::uniform_int_distribution<int> KindD(0, 3);

  const int64_t Box = 4;
  VarId Vs[3] = {mkVar("pv0"), mkVar("pv1"), mkVar("pv2")};

  ConstraintConj Conj;
  // Box constraints make exhaustive enumeration complete.
  for (VarId V : Vs) {
    Conj.push_back(Constraint::make(LinExpr::var(V), CmpKind::Ge, LinExpr(-Box)));
    Conj.push_back(Constraint::make(LinExpr::var(V), CmpKind::Le, LinExpr(Box)));
  }
  int N = NumConD(Rng);
  for (int I = 0; I < N; ++I) {
    LinExpr E;
    for (VarId V : Vs)
      E = E + LinExpr::var(V, CoefD(Rng));
    E = E + ConstD(Rng);
    CmpKind K = KindD(Rng) == 0 ? CmpKind::Eq : CmpKind::Le;
    Conj.push_back(Constraint::make(E, K, LinExpr(0)));
  }

  Tri OmegaAnswer = Omega::isSatConj(Conj);
  std::optional<Model> Enumerated = findModelConj(Conj, Box);
  ASSERT_NE(OmegaAnswer, Tri::Unknown) << conjStr(Conj);
  EXPECT_EQ(OmegaAnswer == Tri::True, Enumerated.has_value())
      << conjStr(Conj);
}

INSTANTIATE_TEST_SUITE_P(RandomConjunctions, OmegaVsEnumeration,
                         ::testing::Range(0u, 60u));
