//===- tests/StoreTest.cpp - persistent spec store tests --------*- C++ -*-===//
//
// The spec store subsystem: canonical content hashing (rename
// invariance, edit sensitivity, transitive-caller invalidation),
// VarId-free serialization round trips, the SpecStore file format
// (fingerprint guard, sat snapshot, outcomes digest, atomic save), the
// pipeline round-trip property (analyze -> save -> reload -> re-analyze
// is byte-identical with zero inference re-runs), the incremental
// re-analysis contract (editing one function re-runs only its group
// and transitive callers — pinned by the store's miss counter), the
// GlobalSolverCache sat snapshot, server store persistence, and the
// cooperative budget cancellation token.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisServer.h"
#include "api/BatchAnalyzer.h"
#include "lang/Parser.h"
#include "lang/Resolve.h"
#include "lang/Transforms.h"
#include "solver/Cancellation.h"
#include "solver/GlobalCache.h"
#include "store/ContentHash.h"
#include "store/SpecSerial.h"
#include "store/SpecStore.h"
#include "support/Json.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

using namespace tnt;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "tnt_store_" + Name + "_" +
         std::to_string(::getpid()) + ".json";
}

struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name) : Path(tempPath(Name)) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

/// Group keys of a source program under the single-program block
/// schedule, mirroring prepare + prescan.
std::vector<std::string> keysOf(const std::string &Source) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Source, Diags);
  if (!P || !resolveProgram(*P, Diags) || !lowerLoops(*P, Diags))
    return {};
  CallGraph CG = CallGraph::build(*P);
  std::vector<std::vector<std::string>> Groups = CG.sccs();
  std::vector<std::set<size_t>> Deps(Groups.size());
  std::vector<uint32_t> Blocks(Groups.size());
  for (size_t G = 0; G < Groups.size(); ++G)
    Blocks[G] = static_cast<uint32_t>(G) + 1;
  return computeGroupKeys(*P, CG, Groups, Deps, Blocks, 0);
}

const char *ChainSrc = R"(
int base(int n)
{
  if (n <= 0) return 0;
  else return base(n - 1);
}
int mid(int n)
{
  return base(n + 1);
}
int main(int n)
{
  return mid(n);
}
)";

BatchItem item(const char *Name, std::string Src) {
  BatchItem It;
  It.Name = Name;
  It.Category = "t";
  It.Source = std::move(Src);
  return It;
}

size_t totalGroups(const BatchResult &R) {
  size_t N = 0;
  for (const BatchProgramResult &P : R.Programs)
    N += P.Result.GroupCount;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Content hashing
//===----------------------------------------------------------------------===//

TEST(ContentHash, AlphaRenamingKeepsKeys) {
  // Params, locals and method names renamed consistently (alphabetical
  // SCC order preserved): structurally the same program.
  std::vector<std::string> A = keysOf(R"(
int f(int n)
{
  int acc;
  acc = n + 1;
  if (acc <= 0) return 0;
  else return f(acc - 2);
}
int main(int k) { return f(k); }
)");
  std::vector<std::string> B = keysOf(R"(
int g(int m)
{
  int tmp;
  tmp = m + 1;
  if (tmp <= 0) return 0;
  else return g(tmp - 2);
}
int main(int z) { return g(z); }
)");
  ASSERT_EQ(A.size(), 2u);
  EXPECT_EQ(A, B);
}

TEST(ContentHash, BodyEditChangesKeyAndInvalidatesCallers) {
  std::vector<std::string> A = keysOf(ChainSrc);
  // Edit the bottom method only.
  std::string Edited = ChainSrc;
  size_t Pos = Edited.find("n - 1");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 5, "n - 2");
  std::vector<std::string> B = keysOf(Edited);
  ASSERT_EQ(A.size(), 3u);
  ASSERT_EQ(B.size(), 3u);
  // Groups are bottom-up: base, mid, main. All three keys change —
  // base because its body changed, mid and main because their keys
  // embed their callee's key (the invalidation rule).
  for (size_t G = 0; G < 3; ++G)
    EXPECT_NE(A[G], B[G]) << "group " << G;
}

TEST(ContentHash, AssumeFormulasResolveLocalsPositionally) {
  // Locals inside assume() formulas must hash by declaration position
  // like every other body reference. These two programs differ only in
  // WHICH local the assume constrains relative to the declaration /
  // use positions — spelling-hashing the formula would give them one
  // key and let the second wrongly replay the first's summary.
  std::vector<std::string> P1 = keysOf(R"(
int f(int p)
{
  int a;
  int b;
  a = p;
  assume(a > 0);
  return a;
}
int main(int n) { return f(n); }
)");
  std::vector<std::string> P2 = keysOf(R"(
int f(int p)
{
  int b;
  int a;
  b = p;
  assume(a > 0);
  return b;
}
int main(int n) { return f(n); }
)");
  ASSERT_EQ(P1.size(), 2u);
  ASSERT_EQ(P2.size(), 2u);
  EXPECT_NE(P1[0], P2[0]);
  // Consistent alpha-renaming of the locals still keys together.
  std::vector<std::string> P1R = keysOf(R"(
int f(int p)
{
  int u;
  int v;
  u = p;
  assume(u > 0);
  return u;
}
int main(int n) { return f(n); }
)");
  EXPECT_EQ(P1, P1R);
}

TEST(ContentHash, ConstantAndCalleeIdentityMatter) {
  std::vector<std::string> Base = keysOf("int main(int n) { return n + 1; }");
  std::vector<std::string> Konst =
      keysOf("int main(int n) { return n + 2; }");
  EXPECT_NE(Base.back(), Konst.back());

  // Same body text for main, but the callee it names resolves to a
  // different method: the call-site identity is the callee's key, not
  // its spelling.
  std::vector<std::string> C1 = keysOf(R"(
int h(int n) { if (n <= 0) return 0; else return h(n - 1); }
int main(int n) { return h(n); }
)");
  std::vector<std::string> C2 = keysOf(R"(
int h(int n) { if (n <= 0) return 0; else return h(n - 3); }
int main(int n) { return h(n); }
)");
  EXPECT_NE(C1.back(), C2.back());
}

TEST(ContentHash, BlockScheduleIsPartOfTheKey) {
  // Identical content under different block schedules must key apart:
  // formula child canonicalization is VarId-hash-based, so inference
  // may legitimately differ between numberings (see ContentHash.h).
  DiagnosticEngine Diags;
  std::optional<Program> P =
      parseProgram("int main(int n) { return n; }", Diags);
  ASSERT_TRUE(P && resolveProgram(*P, Diags) && lowerLoops(*P, Diags));
  CallGraph CG = CallGraph::build(*P);
  auto Groups = CG.sccs();
  std::vector<std::set<size_t>> Deps(Groups.size());
  std::vector<uint32_t> B1(Groups.size(), 1), B2(Groups.size(), 7);
  EXPECT_NE(computeGroupKeys(*P, CG, Groups, Deps, B1, 0),
            computeGroupKeys(*P, CG, Groups, Deps, B2, 0));
  EXPECT_EQ(computeGroupKeys(*P, CG, Groups, Deps, B1, 0),
            computeGroupKeys(*P, CG, Groups, Deps, B1, 0));
}

//===----------------------------------------------------------------------===//
// Serialization round trips
//===----------------------------------------------------------------------===//

namespace {

/// A scenario slot over two parameters plus the block map of a
/// one-group program on block 5 (token "k#0").
struct SerialFixture {
  ScenarioSlot Slot;
  BlockTokenMap Blocks;
  SerialFixture() {
    Slot.MethodIdx = 0;
    Slot.SpecIdx = 0;
    Slot.Params = {mkVar("sx"), mkVar("sy")};
    Slot.NumMethodParams = 2;
    Blocks.TokenOf[5] = "k#0";
    Blocks.BlockOf["k#0"] = 5;
  }
};

} // namespace

TEST(SpecSerial, TreeRoundTripPreservesRendering) {
  SerialFixture F;
  VarId X = F.Slot.Params[0], Y = F.Slot.Params[1];

  // A nested tree exercising: conjunction guards, negation, Ne atoms,
  // existential binders (fresh-style and named), int64-extreme
  // coefficients, primed params, lexicographic measures.
  VarId W;
  {
    VarPool::Scope Sc(5);
    W = VarPool::get().fresh("w"); // "w!b5!0"
  }
  VarId G = mkVar("ghost0");
  Formula Guard1 = Formula::conj2(
      Formula::cmp(LinExpr::var(X, 3) - LinExpr::var(Y, 5) + 1, CmpKind::Le,
                   LinExpr(0)),
      Formula::exists({W}, Formula::cmp(LinExpr::var(W) + LinExpr::var(X),
                                        CmpKind::Eq, LinExpr::var(Y))));
  Formula Guard2 = Formula::neg(Formula::cmp(
      LinExpr::var(G, INT64_C(4611686018427387904)), CmpKind::Ne,
      LinExpr(INT64_C(-9223372036854775807))));
  Formula Guard3 =
      Formula::cmp(LinExpr::var(mkVar("sx'")), CmpKind::Ge, LinExpr(2));

  CaseTree Leaf1;
  Leaf1.Temporal =
      TemporalSpec::term({LinExpr::var(X) - LinExpr::var(Y), LinExpr::var(X)});
  CaseTree Leaf2;
  Leaf2.Temporal = TemporalSpec::loop();
  Leaf2.PostReachable = false;
  CaseTree Inner;
  Inner.Children.emplace_back(Guard2, Leaf2);
  CaseTree Leaf3;
  Leaf3.Temporal = TemporalSpec::mayLoop();
  Inner.Children.emplace_back(Guard3, Leaf3);
  CaseTree Root;
  Root.Children.emplace_back(Guard1, Leaf1);
  Root.Children.emplace_back(Formula::neg(Guard1), Inner);

  ScenarioRecord R;
  R.Slot = F.Slot;
  R.SafetyFailed = false;
  R.ReVerified = true;
  R.Cases = &Root;
  std::optional<std::string> Entry =
      serializeGroupEntry({R}, "some diags\n", true, F.Blocks);
  ASSERT_TRUE(Entry.has_value());

  RehydratedGroup RG;
  std::string Err;
  ASSERT_TRUE(rehydrateGroupEntry(*Entry, {F.Slot}, F.Blocks, RG, &Err))
      << Err;
  ASSERT_EQ(RG.Scenarios.size(), 1u);
  EXPECT_TRUE(RG.Bailed);
  EXPECT_EQ(RG.Diags, "some diags\n");
  EXPECT_TRUE(RG.Scenarios[0].ReVerified);
  // Rendering is the byte-identity currency: trees, guards, measures
  // and binder spellings all reproduce.
  EXPECT_EQ(RG.Scenarios[0].Cases.str(1), Root.str(1));

  // Serializing the rehydrated tree again is a fixpoint.
  ScenarioRecord R2 = R;
  R2.Cases = &RG.Scenarios[0].Cases;
  std::optional<std::string> Entry2 =
      serializeGroupEntry({R2}, "some diags\n", true, F.Blocks);
  ASSERT_TRUE(Entry2.has_value());
  EXPECT_EQ(*Entry, *Entry2);
}

TEST(SpecSerial, FreshVariablesRespellToConsumerBlocks) {
  SerialFixture F;
  VarId W;
  {
    VarPool::Scope Sc(5);
    W = VarPool::get().fresh("fv"); // "fv!b5!<n>"
  }
  CaseTree Root;
  CaseTree Leaf;
  Leaf.Temporal = TemporalSpec::mayLoop();
  Root.Children.emplace_back(
      Formula::cmp(LinExpr::var(W), CmpKind::Ge, LinExpr(0)), Leaf);

  ScenarioRecord R;
  R.Slot = F.Slot;
  R.Cases = &Root;
  std::optional<std::string> Entry =
      serializeGroupEntry({R}, "", false, F.Blocks);
  ASSERT_TRUE(Entry.has_value());
  // The producer's block number must not appear in the entry.
  EXPECT_EQ(Entry->find("b5"), std::string::npos);

  // A consumer whose group for token "k#0" runs on block 9 rehydrates
  // the SAME variable respelled into ITS block.
  BlockTokenMap Consumer;
  Consumer.TokenOf[9] = "k#0";
  Consumer.BlockOf["k#0"] = 9;
  RehydratedGroup RG;
  std::string Err;
  ASSERT_TRUE(rehydrateGroupEntry(*Entry, {F.Slot}, Consumer, RG, &Err))
      << Err;
  EXPECT_NE(RG.Scenarios[0].Cases.str(1).find("!b9!"), std::string::npos);

  // Prescan resolves the same spellings the rehydration will intern.
  std::vector<std::string> Fresh;
  collectFreshSpellings(*Entry, Consumer, Fresh);
  ASSERT_EQ(Fresh.size(), 1u);
  EXPECT_EQ(Fresh[0].find("fv!b9!"), 0u);
}

TEST(SpecSerial, RootBlockVariablesAreNotSerializable) {
  SerialFixture F;
  VarId RootVar;
  {
    VarPool::Scope Sc(0); // The root block has no token.
    RootVar = VarPool::get().fresh("rv");
  }
  CaseTree Root;
  CaseTree Leaf;
  Leaf.Temporal = TemporalSpec::mayLoop();
  Root.Children.emplace_back(
      Formula::cmp(LinExpr::var(RootVar), CmpKind::Ge, LinExpr(0)), Leaf);
  ScenarioRecord R;
  R.Slot = F.Slot;
  R.Cases = &Root;
  EXPECT_FALSE(serializeGroupEntry({R}, "", false, F.Blocks).has_value());
}

TEST(SpecSerial, RejectsMismatchesAndCorruption) {
  SerialFixture F;
  CaseTree Root; // Leaf MayLoop.
  Root.Temporal = TemporalSpec::mayLoop();
  ScenarioRecord R;
  R.Slot = F.Slot;
  R.Cases = &Root;
  std::optional<std::string> Entry =
      serializeGroupEntry({R}, "", false, F.Blocks);
  ASSERT_TRUE(Entry.has_value());

  RehydratedGroup RG;
  // Slot mismatch: different spec index.
  ScenarioSlot Wrong = F.Slot;
  Wrong.SpecIdx = 3;
  EXPECT_FALSE(rehydrateGroupEntry(*Entry, {Wrong}, F.Blocks, RG));
  // Count mismatch.
  EXPECT_FALSE(
      rehydrateGroupEntry(*Entry, {F.Slot, F.Slot}, F.Blocks, RG));
  // Corrupt JSON.
  EXPECT_FALSE(rehydrateGroupEntry("{not json", {F.Slot}, F.Blocks, RG));
  // Unresolvable block token: build an entry whose table names a token
  // the consumer lacks.
  VarId W;
  {
    VarPool::Scope Sc(5);
    W = VarPool::get().fresh("zz");
  }
  CaseTree Root2;
  CaseTree Leaf2;
  Leaf2.Temporal = TemporalSpec::mayLoop();
  Root2.Children.emplace_back(
      Formula::cmp(LinExpr::var(W), CmpKind::Ge, LinExpr(0)), Leaf2);
  ScenarioRecord R2;
  R2.Slot = F.Slot;
  R2.Cases = &Root2;
  std::optional<std::string> E2 =
      serializeGroupEntry({R2}, "", false, F.Blocks);
  ASSERT_TRUE(E2.has_value());
  BlockTokenMap Empty;
  EXPECT_FALSE(rehydrateGroupEntry(*E2, {F.Slot}, Empty, RG));
}

//===----------------------------------------------------------------------===//
// SpecStore file format
//===----------------------------------------------------------------------===//

TEST(SpecStore, SaveLoadRoundTripAndFingerprint) {
  TempFile File("fmt");
  {
    SpecStore S("fp-A");
    S.insert("key1", "{\"v\":1,\"sc\":[]}");
    S.insert("key2", "{\"v\":1,\"sc\":[],\"b\":true}");
    S.insert("key1", "{\"ignored\":true}"); // First writer wins.
    S.setSatSnapshot({{"l-1;x*1", Tri::True}, {"e0;y*2", Tri::False}});
    S.setOutcomesDigest(7, 0xdeadbeefcafe1234ull);
    std::string Err;
    ASSERT_TRUE(S.save(File.Path, &Err)) << Err;
    EXPECT_EQ(S.stats().Inserts, 2u);
  }
  {
    SpecStore S("fp-A");
    std::string Err;
    ASSERT_TRUE(S.load(File.Path, &Err)) << Err;
    EXPECT_EQ(S.stats().LoadedGroups, 2u);
    EXPECT_FALSE(S.stats().LoadDiscarded);
    ASSERT_NE(S.peek("key1"), nullptr);
    // The entry body round-trips byte-exactly (raw number lexemes).
    EXPECT_EQ(*S.peek("key1"), "{\"v\":1,\"sc\":[]}");
    auto Snap = S.satSnapshot();
    ASSERT_EQ(Snap.size(), 2u);
    EXPECT_EQ(Snap[0].first, "l-1;x*1");
    EXPECT_EQ(Snap[0].second, Tri::True);
    uint64_t Count = 0, Hash = 0;
    ASSERT_TRUE(S.outcomesDigest(Count, Hash));
    EXPECT_EQ(Count, 7u);
    EXPECT_EQ(Hash, 0xdeadbeefcafe1234ull);
  }
  {
    // Different config fingerprint: the file is discarded, not served.
    SpecStore S("fp-B");
    std::string Err;
    ASSERT_TRUE(S.load(File.Path, &Err)) << Err;
    EXPECT_TRUE(S.stats().LoadDiscarded);
    EXPECT_EQ(S.size(), 0u);
  }
}

TEST(SpecStore, MissingFileIsColdStartAndGarbageIsAnError) {
  SpecStore S("fp");
  std::string Err;
  EXPECT_TRUE(S.load(tempPath("does_not_exist"), &Err));
  EXPECT_EQ(S.size(), 0u);

  TempFile Bad("bad");
  {
    std::ofstream Out(Bad.Path);
    Out << "this is not json";
  }
  EXPECT_FALSE(S.load(Bad.Path, &Err));
  EXPECT_NE(Err.find(Bad.Path), std::string::npos);
}

TEST(SpecStore, ConfigFingerprintTracksSolveKnobs) {
  AnalyzerConfig A, B;
  EXPECT_EQ(SpecStore::configFingerprint(A),
            SpecStore::configFingerprint(B));
  B.Solve.EnableAbduction = false;
  EXPECT_NE(SpecStore::configFingerprint(A),
            SpecStore::configFingerprint(B));
  B = A;
  B.Modular = false;
  EXPECT_NE(SpecStore::configFingerprint(A),
            SpecStore::configFingerprint(B));
  // Conditional-termination mode writes per-scenario conditions into
  // the entries, so the two modes must not share a store file.
  B = A;
  B.Solve.EnableCondTerm = true;
  EXPECT_NE(SpecStore::configFingerprint(A),
            SpecStore::configFingerprint(B));
  // Threads and FuelBudget do not change stored summaries.
  B = A;
  B.Threads = 8;
  B.FuelBudget = 123;
  EXPECT_EQ(SpecStore::configFingerprint(A),
            SpecStore::configFingerprint(B));
}

TEST(SpecStore, FingerprintBumpDiscardsStaleFiles) {
  // Store files written by older-era builds must be wholesale-discarded
  // on load — a clean cold start, never a parse of entries whose shape
  // this build would misread. v2 predates the per-scenario "tc"
  // conditions and the ct= mode flag; v3 predates the per-group "ct"
  // audited-counter record (its entries would warm-serve with the
  // cond-term stats silently reading zero).
  std::string Cur = SpecStore::configFingerprint(AnalyzerConfig());
  ASSERT_EQ(Cur.rfind("v4;", 0), 0u) << Cur;
  // Reconstruct the old spellings of the same knobs: v3 had identical
  // fields under the old prefix; v2 additionally lacked ct=.
  std::string V3 = "v3;" + Cur.substr(3);
  std::string V2 = "v2;" + Cur.substr(3);
  size_t Ct = V2.find(";ct=");
  ASSERT_NE(Ct, std::string::npos);
  V2.erase(Ct);
  for (const std::string &Stale : {V2, V3}) {
    TempFile File("stalefp");
    {
      SpecStore Old(Stale);
      Old.insert("stale-key", "{\"v\":1,\"sc\":[]}");
      std::string Err;
      ASSERT_TRUE(Old.save(File.Path, &Err)) << Err;
    }
    SpecStore New(Cur);
    std::string Err;
    ASSERT_TRUE(New.load(File.Path, &Err)) << Err; // Discard, not error.
    EXPECT_TRUE(New.stats().LoadDiscarded) << Stale;
    EXPECT_EQ(New.size(), 0u);
    EXPECT_EQ(New.peek("stale-key"), nullptr);
  }
}

//===----------------------------------------------------------------------===//
// The round-trip property (acceptance criterion)
//===----------------------------------------------------------------------===//

TEST(StoreRoundTrip, CorpusReplayIsByteIdenticalWithZeroReRuns) {
  std::vector<BatchItem> Items = corpusBatchItems(12);
  TempFile File("roundtrip");

  BatchOptions Opt;
  Opt.Threads = 2;

  // Storeless reference: the store must never change answers.
  std::string Reference;
  {
    BatchAnalyzer BA(Opt);
    Reference = BA.run(Items).renderOutcomes();
  }

  // Cold run with a store: analyze, then save.
  std::string Cold;
  {
    SpecStore Store(SpecStore::configFingerprint(Opt.Program));
    Opt.Store = &Store;
    BatchAnalyzer BA(Opt);
    BatchResult R = BA.run(Items);
    Cold = R.renderOutcomes();
    EXPECT_EQ(R.StoreHits, 0u);
    EXPECT_EQ(R.StoreMisses, totalGroups(R));
    std::string Err;
    ASSERT_TRUE(Store.save(File.Path, &Err)) << Err;
  }
  EXPECT_EQ(Reference, Cold);

  // "Fresh process": a new store loaded from disk, a new analyzer.
  // Byte-identical output, every group served from the store, zero
  // inference re-runs.
  {
    SpecStore Store(SpecStore::configFingerprint(Opt.Program));
    std::string Err;
    ASSERT_TRUE(Store.load(File.Path, &Err)) << Err;
    Opt.Store = &Store;
    BatchAnalyzer BA(Opt);
    BatchResult R = BA.run(Items);
    EXPECT_EQ(R.renderOutcomes(), Cold);
    EXPECT_EQ(R.StoreMisses, 0u) << "a group re-ran inference on replay";
    EXPECT_EQ(R.StoreHits, totalGroups(R));

    // Thread count stays immaterial on the replay path too.
    Opt.Threads = 1;
    BatchAnalyzer BA1(Opt);
    EXPECT_EQ(BA1.run(Items).renderOutcomes(), Cold);
  }
}

TEST(StoreRoundTrip, EditReRunsOnlyGroupAndTransitiveCallers) {
  // Two programs: the chain (base <- mid <- main) and an unrelated
  // one. Editing base must re-run exactly base, mid, main of the
  // chain program — its transitive callers via the call graph — and
  // nothing of the unrelated program.
  const char *Other = R"(
int spin(int b)
{
  if (b < 0) return 0;
  else return spin(b + 1);
}
int main(int n) { return spin(1); }
)";
  std::vector<BatchItem> Items = {item("chain", ChainSrc),
                                  item("other", Other)};

  BatchOptions Opt;
  SpecStore Store(SpecStore::configFingerprint(Opt.Program));
  Opt.Store = &Store;

  BatchAnalyzer BA(Opt);
  BatchResult Cold = BA.run(Items);
  ASSERT_EQ(Cold.StoreMisses, totalGroups(Cold)); // 3 + 2 groups.
  ASSERT_EQ(totalGroups(Cold), 5u);

  // Unchanged replay: zero re-runs.
  BatchResult Warm = BA.run(Items);
  EXPECT_EQ(Warm.StoreMisses, 0u);
  EXPECT_EQ(Warm.StoreHits, 5u);

  // Edit the BOTTOM of the chain.
  std::string Edited = ChainSrc;
  size_t Pos = Edited.find("n - 1");
  ASSERT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 5, "n - 2");
  Items[0].Source = Edited;

  uint64_t MissBefore = Store.stats().Misses;
  BatchResult Inc = BA.run(Items);
  // The re-run counter: exactly the chain's three groups re-ran.
  EXPECT_EQ(Store.stats().Misses - MissBefore, 3u);
  EXPECT_EQ(Inc.StoreHits, 2u); // Both groups of "other" replayed.
  EXPECT_EQ(Inc.Programs[1].Result.GroupsFromStore, 2u);
  EXPECT_EQ(Inc.Programs[0].Result.GroupsFromStore, 0u);

  // Edit only the TOP: callees stay valid.
  std::string TopEdit = ChainSrc;
  size_t MPos = TopEdit.find("mid(n)");
  ASSERT_NE(MPos, std::string::npos);
  TopEdit.replace(MPos, 6, "mid(n + 1)");
  Items[0].Source = TopEdit;
  MissBefore = Store.stats().Misses;
  BatchResult Inc2 = BA.run(Items);
  EXPECT_EQ(Store.stats().Misses - MissBefore, 1u); // main only.
  EXPECT_EQ(Inc2.Programs[0].Result.GroupsFromStore, 2u);
}

TEST(StoreRoundTrip, SingleProgramAnalyzeUsesStore) {
  AnalyzerConfig Cfg;
  SpecStore Store(SpecStore::configFingerprint(Cfg));
  Cfg.Store = &Store;
  AnalysisResult Cold = analyzeProgram(ChainSrc, Cfg);
  ASSERT_TRUE(Cold.Ok);
  EXPECT_EQ(Cold.GroupsFromStore, 0u);
  AnalysisResult Warm = analyzeProgram(ChainSrc, Cfg);
  EXPECT_EQ(Warm.GroupsFromStore, Warm.GroupCount);
  EXPECT_EQ(Warm.str(), Cold.str());
  EXPECT_EQ(Warm.outcome(), Cold.outcome());
}

TEST(StoreRoundTrip, TermCondSurvivesFreshProcessRehydration) {
  // Conditional-termination mode: the audited per-scenario condition
  // ("termcond" in the rendered summary) must ride the store through
  // a fresh-process reload byte-identically. step-miss is the
  // canonical conditionally-terminating shape (terminates only from
  // even non-negative x), so f's condition is strictly between false
  // and true.
  const char *Src =
      "void f(int x) { if (x == 0) return; else f(x - 2); }\n"
      "void main(int n) { f(n); }\n";
  std::vector<BatchItem> Items = {item("stepmiss", Src)};
  TempFile File("termcond");

  BatchOptions Opt;
  Opt.Program.Solve.EnableCondTerm = true;

  std::string Cold;
  CondTermStats ColdStats;
  {
    SpecStore Store(SpecStore::configFingerprint(Opt.Program));
    Opt.Store = &Store;
    BatchAnalyzer BA(Opt);
    BatchResult R = BA.run(Items);
    Cold = R.renderOutcomes();
    ColdStats = R.CondTerm;
    EXPECT_GT(R.CondTerm.Emitted, 0u);
    EXPECT_EQ(R.CondTerm.Demoted, 0u);
    std::string Err;
    ASSERT_TRUE(Store.save(File.Path, &Err)) << Err;
  }
  EXPECT_NE(Cold.find("termcond"), std::string::npos) << Cold;

  // "Fresh process": a new store loaded from disk, a new analyzer.
  // Zero inference re-runs, and the rehydrated conditions render to
  // the same bytes.
  {
    SpecStore Store(SpecStore::configFingerprint(Opt.Program));
    std::string Err;
    ASSERT_TRUE(Store.load(File.Path, &Err)) << Err;
    Opt.Store = &Store;
    BatchAnalyzer BA(Opt);
    BatchResult R = BA.run(Items);
    EXPECT_EQ(R.renderOutcomes(), Cold);
    EXPECT_EQ(R.StoreMisses, 0u) << "a group re-ran inference on replay";
    EXPECT_EQ(R.StoreHits, totalGroups(R));
    // The Cond column counts from the published summaries, so a warm
    // replay counts the program exactly like the cold run did.
    auto Per = R.perCategory();
    ASSERT_EQ(Per.size(), 1u);
    EXPECT_EQ(Per[0].second.Cond, 1u);
    // The audited counters ride the entries' "ct" records, so the
    // warm replay reports the SAME stats as the cold run — before the
    // record existed, a fully warm run read all zeros here (the
    // cond_term stats hole).
    EXPECT_EQ(R.CondTerm.Emitted, ColdStats.Emitted);
    EXPECT_EQ(R.CondTerm.Sound, ColdStats.Sound);
    EXPECT_EQ(R.CondTerm.Demoted, ColdStats.Demoted);
    EXPECT_EQ(R.CondTerm.NonTrivial, ColdStats.NonTrivial);
    EXPECT_EQ(R.CondTerm.LeavesCertified, ColdStats.LeavesCertified);
  }
}

//===----------------------------------------------------------------------===//
// GlobalSolverCache sat snapshot
//===----------------------------------------------------------------------===//

TEST(SatSnapshot, ExportImportServesWarmStarts) {
  ConstraintConj Conj = {Constraint::make(LinExpr::var(mkVar("snap_x")),
                                          CmpKind::Ge, LinExpr(3))};
  GlobalSolverCache Producer;
  {
    SolverContext Ctx;
    Ctx.attachGlobalTier(&Producer);
    EXPECT_EQ(Ctx.isSatConj(Conj), Tri::True);
    Ctx.promoteTo(Producer);
  }
  std::vector<std::pair<std::string, Tri>> Snap =
      Producer.exportSatSnapshot();
  ASSERT_EQ(Snap.size(), 1u);
  // Name-canonical key: no VarIds, spelling-sorted terms.
  EXPECT_NE(Snap[0].first.find("snap_x"), std::string::npos);
  EXPECT_EQ(Snap[0].second, Tri::True);

  // A fresh tier warm-started from the snapshot answers the query
  // without an Omega run, and the hit is fuel-transparent (counted as
  // a global tier hit).
  GlobalSolverCache Consumer;
  Consumer.importSatSnapshot(Snap);
  EXPECT_EQ(Consumer.stats().SatSnapshotEntries, 1u);
  SolverContext Ctx;
  Ctx.attachGlobalTier(&Consumer);
  EXPECT_EQ(Ctx.isSatConj(Conj), Tri::True);
  SolverStats S = Ctx.stats();
  EXPECT_EQ(S.GlobalSatHits, 1u);
  EXPECT_EQ(S.fuelUsed(), 0u);
  EXPECT_EQ(Consumer.stats().SatSnapshotHits, 1u);

  // Re-export includes unconsumed snapshot entries: a save after a
  // partial warm run never drops still-valid answers.
  GlobalSolverCache Idle;
  Idle.importSatSnapshot(Snap);
  EXPECT_EQ(Idle.exportSatSnapshot(), Snap);
}

TEST(SatSnapshot, CanonKeyIsIdAgnostic) {
  // Same conjunction built from differently ordered interning must
  // canonicalize identically (keys are spelling-sorted).
  ConstraintConj C1 = {
      Constraint::make(LinExpr::var(mkVar("ck_a")) + LinExpr::var(mkVar("ck_b")),
                       CmpKind::Le, LinExpr(4)),
      Constraint::make(LinExpr::var(mkVar("ck_c")), CmpKind::Eq, LinExpr(0))};
  ConstraintConj C2 = {C1[1], C1[0]}; // Permuted conjunction order.
  EXPECT_EQ(GlobalSolverCache::satKeyCanon(internConj(C1)),
            GlobalSolverCache::satKeyCanon(internConj(C2)));
}

//===----------------------------------------------------------------------===//
// Server persistence
//===----------------------------------------------------------------------===//

TEST(ServerStore, WarmRestartServesFromDiskByteIdentically) {
  TempFile File("server");
  std::string Request = soakRequestJson(1, ChainSrc);

  std::string ColdResponse;
  {
    ServerOptions SO;
    SO.StorePath = File.Path;
    AnalysisServer Server(SO);
    ColdResponse = Server.handleLine(Request);
    EXPECT_EQ(Server.stats().StoreHits, 0u);
    // Shutdown persists the store.
    Server.handleLine("{\"id\":2,\"verb\":\"shutdown\"}");
  }
  {
    ServerOptions SO;
    SO.StorePath = File.Path;
    AnalysisServer Server(SO);
    std::string WarmResponse = Server.handleLine(Request);
    EXPECT_EQ(WarmResponse, ColdResponse);
    ServerStats S = Server.stats();
    EXPECT_GT(S.StoreHits, 0u);
    EXPECT_EQ(S.StoreMisses, 0u);
  }
}

TEST(ServerStore, CondTermStatsMatchWarmAndCold) {
  // The server-level view of the stats hole: a warm-restarted server
  // answering entirely from the spec store must report the same
  // cond_term counters through its stats verb as the cold server did —
  // the per-group "ct" records fold into ServerStats exactly like
  // freshly audited groups.
  const char *Src = "void f(int x) { if (x == 0) return; else f(x - 2); }\n"
                    "void main(int n) { f(n); }\n";
  TempFile File("serverct");
  std::string Request = soakRequestJson(1, Src);

  ServerOptions SO;
  SO.StorePath = File.Path;
  SO.Program.Solve.EnableCondTerm = true;

  std::string ColdResponse;
  CondTermStats ColdStats;
  {
    AnalysisServer Server(SO);
    ColdResponse = Server.handleLine(Request);
    ColdStats = Server.stats().CondTerm;
    EXPECT_GT(ColdStats.Emitted, 0u);
    Server.handleLine("{\"id\":2,\"verb\":\"shutdown\"}");
  }
  {
    AnalysisServer Server(SO);
    EXPECT_EQ(Server.handleLine(Request), ColdResponse);
    ServerStats S = Server.stats();
    EXPECT_GT(S.StoreHits, 0u);
    EXPECT_EQ(S.StoreMisses, 0u);
    EXPECT_EQ(S.CondTerm.Emitted, ColdStats.Emitted);
    EXPECT_EQ(S.CondTerm.Sound, ColdStats.Sound);
    EXPECT_EQ(S.CondTerm.Demoted, ColdStats.Demoted);
    EXPECT_EQ(S.CondTerm.NonTrivial, ColdStats.NonTrivial);
    EXPECT_EQ(S.CondTerm.LeavesCertified, ColdStats.LeavesCertified);
  }
}

//===----------------------------------------------------------------------===//
// Cooperative budget cancellation
//===----------------------------------------------------------------------===//

TEST(Cancellation, TokenFlipsExactlyPastBudget) {
  CancellationToken T(3);
  T.charge();
  T.charge();
  T.charge();
  EXPECT_FALSE(T.cancelled()); // A budget of 3 allows 3 charges.
  T.charge();
  EXPECT_TRUE(T.cancelled());
  EXPECT_EQ(T.charged(), 4u);
}

TEST(Cancellation, SolverContextChargesAnswersNotTierHits) {
  ConstraintConj Conj = {Constraint::make(LinExpr::var(mkVar("cc_x")),
                                          CmpKind::Ge, LinExpr(1))};
  GlobalSolverCache Tier;
  {
    SolverContext Payer;
    Payer.attachGlobalTier(&Tier);
    (void)Payer.isSatConj(Conj);
    Payer.promoteTo(Tier);
  }
  CancellationToken T(100);
  SolverContext Ctx;
  Ctx.attachGlobalTier(&Tier);
  Ctx.attachCancellation(&T);
  (void)Ctx.isSatConj(Conj); // Tier answers: not charged.
  EXPECT_EQ(T.charged(), 0u);
  (void)Ctx.isSatConj(Conj); // Local cache hit: charged.
  EXPECT_EQ(T.charged(), 1u);
  EXPECT_FALSE(Ctx.cancelled());
}

TEST(Cancellation, SerialBudgetCutoffIsDeterministic) {
  // The exact-cutoff property the token buys over the old
  // start-of-group check: two serial runs under the same budget stop
  // at the same query and produce identical results.
  AnalyzerConfig Cfg;
  Cfg.FuelBudget = 10; // Cuts mid-inference for this program.
  AnalysisResult A = analyzeProgram(ChainSrc, Cfg);
  AnalysisResult B = analyzeProgram(ChainSrc, Cfg);
  ASSERT_TRUE(A.Ok);
  EXPECT_EQ(A.FuelUsed, B.FuelUsed);
  EXPECT_EQ(A.str(), B.str());
  EXPECT_EQ(A.outcome(), B.outcome());
  EXPECT_TRUE(A.OverBudget);
  EXPECT_EQ(A.outcome(), Outcome::Timeout);
  // And the budget was actually exceeded at a query boundary, not
  // merely estimated at a group boundary.
  EXPECT_GT(A.FuelUsed, Cfg.FuelBudget);
}
