//===- tests/SynthTest.cpp - Farkas / ranking / abduction ------*- C++ -*-===//

#include "solver/Solver.h"
#include "synth/Abduction.h"
#include "synth/Farkas.h"
#include "synth/Ranking.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

LinExpr ex(VarId V) { return LinExpr::var(V); }

Constraint le(const LinExpr &L, const LinExpr &R) {
  return Constraint::make(L, CmpKind::Le, R);
}
Constraint ge(const LinExpr &L, const LinExpr &R) {
  return Constraint::make(L, CmpKind::Ge, R);
}
Constraint eq(const LinExpr &L, const LinExpr &R) {
  return Constraint::make(L, CmpKind::Eq, R);
}

} // namespace

//===----------------------------------------------------------------------===//
// ParamLinExpr
//===----------------------------------------------------------------------===//

TEST(ParamLinExpr, ApplyTemplateToVars) {
  VarId C0 = freshVar("c"), C1 = freshVar("c"), C2 = freshVar("c");
  VarId X = mkVar("plx"), Y = mkVar("ply");
  ParamLinExpr P =
      ParamLinExpr::applyTemplate({C0, C1, C2}, {ex(X), ex(Y)});
  std::map<VarId, int64_t> Sol{{C0, 3}, {C1, 1}, {C2, -2}};
  LinExpr E = P.instantiate(Sol);
  EXPECT_EQ(E.coeff(X), 1);
  EXPECT_EQ(E.coeff(Y), -2);
  EXPECT_EQ(E.constant(), 3);
}

TEST(ParamLinExpr, ApplyTemplateToCompoundArgs) {
  VarId C0 = freshVar("c"), C1 = freshVar("c");
  VarId X = mkVar("plx"), Y = mkVar("ply");
  // c0 + c1*(x + y - 1).
  ParamLinExpr P = ParamLinExpr::applyTemplate({C0, C1}, {ex(X) + ex(Y) - 1});
  LinExpr E = P.instantiate({{C0, 0}, {C1, 2}});
  EXPECT_EQ(E.coeff(X), 2);
  EXPECT_EQ(E.coeff(Y), 2);
  EXPECT_EQ(E.constant(), -2);
}

TEST(ParamLinExpr, Arithmetic) {
  VarId C0 = freshVar("c"), C1 = freshVar("c");
  VarId X = mkVar("plx");
  ParamLinExpr A = ParamLinExpr::applyTemplate({C0, C1}, {ex(X)});
  ParamLinExpr D = A - A;
  EXPECT_TRUE(D.instantiate({{C0, 5}, {C1, 7}}).isZero());
  ParamLinExpr S = A + 3;
  EXPECT_EQ(S.instantiate({{C0, 1}, {C1, 0}}).constant(), 4);
}

//===----------------------------------------------------------------------===//
// FarkasSystem
//===----------------------------------------------------------------------===//

TEST(Farkas, DerivesSimpleConsequence) {
  // Find t with: (x >= 2) ==> x - t >= 0 and t >= 1, i.e. 1 <= t <= 2.
  VarId X = mkVar("fkx");
  VarId T = freshVar("fk_t");
  FarkasSystem FS;
  ParamLinExpr Conseq = ParamLinExpr::fromConcrete(ex(X));
  ParamLinExpr TP;
  TP.Const = -LinExpr::var(T);
  FS.addImplication({ge(ex(X), LinExpr(2))}, Conseq + TP);
  FS.addParamConstraint(LinExpr::var(T) - 1, LpRel::Ge);
  ASSERT_TRUE(FS.solve());
  int64_t TV = FS.params().at(T);
  EXPECT_GE(TV, 1);
  EXPECT_LE(TV, 2);
}

TEST(Farkas, InfeasibleWhenNoDerivation) {
  // (x >= 0) ==> y >= 0 has no Farkas certificate (y unconstrained).
  VarId X = mkVar("fkx"), Y = mkVar("fky");
  FarkasSystem FS;
  FS.addImplication({ge(ex(X), LinExpr(0))},
                    ParamLinExpr::fromConcrete(ex(Y)));
  EXPECT_FALSE(FS.solve());
}

TEST(Farkas, UsesEqualityWithFreeMultiplier) {
  // (x = y) ==> y - x >= 0 needs a NEGATIVE multiplier on x - y = 0.
  VarId X = mkVar("fkx"), Y = mkVar("fky");
  FarkasSystem FS;
  FS.addImplication({eq(ex(X), ex(Y))},
                    ParamLinExpr::fromConcrete(ex(Y) - ex(X)));
  EXPECT_TRUE(FS.solve());
}

//===----------------------------------------------------------------------===//
// Ranking synthesis
//===----------------------------------------------------------------------===//

namespace {

/// Builds the classic countdown edge: pred P(x), x' = x - 1, x >= 1.
RankEdge countdownEdge(VarId X, VarId XP) {
  RankEdge E;
  E.Src = 0;
  E.Dst = 0;
  E.Ctx = {ge(ex(X), LinExpr(1)), eq(ex(XP), ex(X) - 1)};
  E.DstArgs = {ex(XP)};
  return E;
}

} // namespace

TEST(Ranking, SimpleCountdown) {
  VarId X = mkVar("rkx"), XP = mkVar("rkx'");
  RankResult R = synthesizeRanking({{X}}, {countdownEdge(X, XP)});
  ASSERT_TRUE(R.Success);
  ASSERT_EQ(R.Measures[0].size(), 1u);
  // The measure must decrease along x' = x - 1 under x >= 1 and be
  // bounded; x (possibly scaled/shifted) qualifies. Check semantically.
  const LinExpr &M = R.Measures[0][0];
  EXPECT_GT(M.coeff(X), 0);
}

TEST(Ranking, FooTermCase) {
  // The paper's running example, scenario x>=0 && y<0 (assumption a15):
  // x>=0 && x'=x+y && y'=y && x'>=0 && y<0 with U3pr(x,y) -> U3pr(x',y').
  VarId X = mkVar("rfx"), Y = mkVar("rfy");
  VarId XP = mkVar("rfx'"), YP = mkVar("rfy'");
  RankEdge E;
  E.Src = E.Dst = 0;
  E.Ctx = {ge(ex(X), LinExpr(0)), eq(ex(XP), ex(X) + ex(Y)),
           eq(ex(YP), ex(Y)), ge(ex(XP), LinExpr(0)),
           le(ex(Y), LinExpr(-1))};
  E.DstArgs = {ex(XP), ex(YP)};
  RankResult R = synthesizeRanking({{X, Y}}, {E});
  ASSERT_TRUE(R.Success);
  ASSERT_EQ(R.Measures[0].size(), 1u);
  // The paper derives r(x,y) = x; any valid measure must use x with a
  // positive coefficient.
  EXPECT_GT(R.Measures[0][0].coeff(X), 0);
}

TEST(Ranking, FooLoopCaseFails) {
  // Scenario x>=0 && y>=0: x grows or stays; no ranking function exists.
  VarId X = mkVar("rgx"), Y = mkVar("rgy");
  VarId XP = mkVar("rgx'"), YP = mkVar("rgy'");
  RankEdge E;
  E.Src = E.Dst = 0;
  E.Ctx = {ge(ex(X), LinExpr(0)), eq(ex(XP), ex(X) + ex(Y)),
           eq(ex(YP), ex(Y)), ge(ex(XP), LinExpr(0)),
           ge(ex(Y), LinExpr(0))};
  E.DstArgs = {ex(XP), ex(YP)};
  RankResult R = synthesizeRanking({{X, Y}}, {E});
  EXPECT_FALSE(R.Success);
}

TEST(Ranking, LexicographicTwoPhase) {
  // Nested-loop shape over (i, j):
  //   outer: i' = i - 1, j' arbitrary bounded by n... modeled as
  //          i >= 1, i' = i - 1           (j unconstrained -> j' free)
  //   inner: i' = i, j' = j - 1, j >= 1.
  // No single linear function handles both; a 2-component measure does.
  VarId I = mkVar("lxi"), J = mkVar("lxj");
  VarId IP = mkVar("lxi'"), JP = mkVar("lxj'");
  RankEdge Outer;
  Outer.Src = Outer.Dst = 0;
  Outer.Ctx = {ge(ex(I), LinExpr(1)), eq(ex(IP), ex(I) - 1),
               ge(ex(JP), LinExpr(0))};
  Outer.DstArgs = {ex(IP), ex(JP)};
  RankEdge Inner;
  Inner.Src = Inner.Dst = 0;
  Inner.Ctx = {ge(ex(I), LinExpr(0)), ge(ex(J), LinExpr(1)),
               eq(ex(IP), ex(I)), eq(ex(JP), ex(J) - 1)};
  Inner.DstArgs = {ex(IP), ex(JP)};
  RankResult R = synthesizeRanking({{I, J}}, {Outer, Inner});
  ASSERT_TRUE(R.Success);
  EXPECT_GE(R.Measures[0].size(), 2u);
}

TEST(Ranking, MutualRecursionTwoPreds) {
  // f(x) calls g(x), g(x) calls f(x-1) under x >= 1: measures exist for
  // both preds.
  VarId X = mkVar("mrx"), XP = mkVar("mrx'");
  RankEdge FtoG;
  FtoG.Src = 0;
  FtoG.Dst = 1;
  FtoG.Ctx = {ge(ex(X), LinExpr(0)), eq(ex(XP), ex(X))};
  FtoG.DstArgs = {ex(XP)};
  RankEdge GtoF;
  GtoF.Src = 1;
  GtoF.Dst = 0;
  GtoF.Ctx = {ge(ex(X), LinExpr(1)), eq(ex(XP), ex(X) - 1)};
  GtoF.DstArgs = {ex(XP)};
  RankResult R = synthesizeRanking({{X}, {X}}, {FtoG, GtoF});
  ASSERT_TRUE(R.Success);
  EXPECT_FALSE(R.Measures[0].empty());
  EXPECT_FALSE(R.Measures[1].empty());
}

TEST(Ranking, InfeasibleEdgesIgnored) {
  VarId X = mkVar("iex"), XP = mkVar("iex'");
  RankEdge Dead;
  Dead.Src = Dead.Dst = 0;
  Dead.Ctx = {ge(ex(X), LinExpr(1)), le(ex(X), LinExpr(0)),
              eq(ex(XP), ex(X) + 1)};
  Dead.DstArgs = {ex(XP)};
  RankResult R = synthesizeRanking({{X}}, {Dead});
  EXPECT_TRUE(R.Success);
}

TEST(Ranking, SelfLoopArgsOverParams) {
  // Args expressed directly over the canonical params (x := x - 1 with
  // no primed vars): exercises simultaneous substitution.
  VarId X = mkVar("spx");
  RankEdge E;
  E.Src = E.Dst = 0;
  E.Ctx = {ge(ex(X), LinExpr(1))};
  E.DstArgs = {ex(X) - 1};
  RankResult R = synthesizeRanking({{X}}, {E});
  ASSERT_TRUE(R.Success);
}

//===----------------------------------------------------------------------===//
// Abduction
//===----------------------------------------------------------------------===//

TEST(Abduction, PaperFooExample) {
  // ctx: x >= 0 && x' = x + y && y' = y; target: x' >= 0.
  // The paper's engine discovers y >= 0 (one variable), better than the
  // trivial x + y >= 0 (two variables).
  VarId X = mkVar("abx"), Y = mkVar("aby");
  VarId XP = mkVar("abx'"), YP = mkVar("aby'");
  ConstraintConj Ctx = {ge(ex(X), LinExpr(0)), eq(ex(XP), ex(X) + ex(Y)),
                        eq(ex(YP), ex(Y))};
  ConstraintConj Target = {ge(ex(XP), LinExpr(0))};
  AbductionResult R = abduce(Ctx, Target, {X, Y});
  ASSERT_TRUE(R.Success);
  // Must mention y and not x (minimum-variable preference).
  EXPECT_NE(R.Alpha.expr().coeff(Y), 0);
  EXPECT_EQ(R.Alpha.expr().coeff(X), 0);
  // Check it really works: ctx && alpha ==> target.
  Formula Strengthened = Formula::conj2(conjToFormula(Ctx),
                                        Formula::atom(R.Alpha));
  EXPECT_TRUE(Solver::entails(Strengthened, conjToFormula(Target)));
}

TEST(Abduction, AlreadyImpliedNeedsNothing) {
  VarId X = mkVar("abx");
  ConstraintConj Ctx = {ge(ex(X), LinExpr(5))};
  ConstraintConj Target = {ge(ex(X), LinExpr(0))};
  AbductionResult R = abduce(Ctx, Target, {X});
  ASSERT_TRUE(R.Success);
  // Alpha is trivially true.
  EXPECT_TRUE(Formula::atom(R.Alpha).isTop());
}

TEST(Abduction, RejectsContradictoryTarget) {
  // ctx: x >= 1; target: x <= -1. Any alpha over {x} that entails the
  // target contradicts the context, so abduction must fail.
  VarId X = mkVar("abx");
  ConstraintConj Ctx = {ge(ex(X), LinExpr(1))};
  ConstraintConj Target = {le(ex(X), LinExpr(-1))};
  AbductionResult R = abduce(Ctx, Target, {X});
  EXPECT_FALSE(R.Success);
}

TEST(Abduction, TwoVariableCondition) {
  // ctx: x' = x - y; target: x' >= 1. Needs x - y >= 1: two variables.
  VarId X = mkVar("abx"), Y = mkVar("aby"), XP = mkVar("abx'");
  ConstraintConj Ctx = {eq(ex(XP), ex(X) - ex(Y))};
  ConstraintConj Target = {ge(ex(XP), LinExpr(1))};
  AbductionResult R = abduce(Ctx, Target, {X, Y});
  ASSERT_TRUE(R.Success);
  EXPECT_NE(R.Alpha.expr().coeff(X), 0);
  EXPECT_NE(R.Alpha.expr().coeff(Y), 0);
  Formula Strengthened =
      Formula::conj2(conjToFormula(Ctx), Formula::atom(R.Alpha));
  EXPECT_TRUE(Solver::entails(Strengthened, conjToFormula(Target)));
  EXPECT_TRUE(Solver::definitelySat(Strengthened));
}

TEST(Abduction, ConstantOnlyCondition) {
  // ctx: y = 3; target: y >= 2 is already implied; but target y >= 4
  // cannot be fixed by any alpha (inconsistent), so expect failure.
  VarId Y = mkVar("aby");
  ConstraintConj Ctx = {eq(ex(Y), LinExpr(3))};
  EXPECT_TRUE(abduce(Ctx, {ge(ex(Y), LinExpr(2))}, {Y}).Success);
  EXPECT_FALSE(abduce(Ctx, {ge(ex(Y), LinExpr(4))}, {Y}).Success);
}

TEST(Abduction, EmptyAntecedent) {
  // The backwards conditional-termination pass can reach abduce with a
  // vacuous context (an obligation whose specialized edge context
  // projected away entirely). An empty conjunction is "true": alpha
  // alone must establish the target, so abduction reduces to "is the
  // target itself expressible over the candidate variables".
  VarId X = mkVar("abx");
  ConstraintConj Ctx = {};
  ConstraintConj Target = {ge(ex(X), LinExpr(0))};
  AbductionResult R = abduce(Ctx, Target, {X});
  ASSERT_TRUE(R.Success);
  Formula Strengthened = Formula::atom(R.Alpha);
  EXPECT_TRUE(Solver::entails(Strengthened, conjToFormula(Target)));
  EXPECT_TRUE(Solver::definitelySat(Strengthened));
}

TEST(Abduction, ContradictoryCaseSplits) {
  // Contradictory case-split constraints in the context: no alpha can
  // satisfy condition (i) (ctx && alpha satisfiable), so abduction
  // must fail cleanly rather than emit a vacuously "entailing" alpha —
  // exactly what an infeasible specialized edge handed to the
  // backwards pass must produce.
  VarId X = mkVar("abx");
  ConstraintConj Ctx = {ge(ex(X), LinExpr(1)), le(ex(X), LinExpr(-1))};
  ConstraintConj Target = {ge(ex(X), LinExpr(0))};
  AbductionResult R = abduce(Ctx, Target, {X});
  EXPECT_FALSE(R.Success);
}

TEST(Abduction, Int64ExtremeCoefficients) {
  // Coefficients near the int64 edge pushed through the Farkas
  // multipliers. The property fence is soundness, not completeness: an
  // overflow-aware implementation may fail the query, but a returned
  // alpha must genuinely strengthen ctx to the target and stay
  // satisfiable with it.
  const int64_t Big = int64_t(1) << 62;
  VarId X = mkVar("abx"), XP = mkVar("abx'");
  {
    // ctx: x' = x - 2^62; target: x' >= 0 (alpha wants x >= 2^62).
    ConstraintConj Ctx = {eq(ex(XP), ex(X) - LinExpr(Big))};
    ConstraintConj Target = {ge(ex(XP), LinExpr(0))};
    AbductionResult R = abduce(Ctx, Target, {X});
    if (R.Success) {
      Formula Strengthened =
          Formula::conj2(conjToFormula(Ctx), Formula::atom(R.Alpha));
      EXPECT_TRUE(Solver::entails(Strengthened, conjToFormula(Target)));
      EXPECT_TRUE(Solver::definitelySat(Strengthened));
    }
  }
  {
    // Extreme variable coefficient: ctx: x' = 2^62 * x; target:
    // x' >= 2^62 (alpha wants x >= 1).
    ConstraintConj Ctx = {eq(ex(XP), ex(X) * Big)};
    ConstraintConj Target = {ge(ex(XP), LinExpr(Big))};
    AbductionResult R = abduce(Ctx, Target, {X});
    if (R.Success) {
      Formula Strengthened =
          Formula::conj2(conjToFormula(Ctx), Formula::atom(R.Alpha));
      EXPECT_TRUE(Solver::entails(Strengthened, conjToFormula(Target)));
      EXPECT_TRUE(Solver::definitelySat(Strengthened));
    }
  }
  {
    // Contradiction at the extreme: ctx pins x' to -2^62, the target
    // demands x' >= 2^62 — alpha over x cannot mend a fixed x', so a
    // success here would be unsound.
    ConstraintConj Ctx = {eq(ex(XP), LinExpr(-Big))};
    ConstraintConj Target = {ge(ex(XP), LinExpr(Big))};
    EXPECT_FALSE(abduce(Ctx, Target, {X}).Success);
  }
}

TEST(Abduction, EqualityTarget) {
  // ctx: x' = x + y && y <= 0; target: x' = x. One direction follows
  // from y <= 0; the other needs the abduced y >= 0 (jointly y = 0).
  VarId X = mkVar("abx"), Y = mkVar("aby"), XP = mkVar("abx'");
  ConstraintConj Ctx = {eq(ex(XP), ex(X) + ex(Y)), le(ex(Y), LinExpr(0))};
  ConstraintConj Target = {eq(ex(XP), ex(X))};
  AbductionResult R = abduce(Ctx, Target, {X, Y});
  ASSERT_TRUE(R.Success);
  Formula Strengthened =
      Formula::conj2(conjToFormula(Ctx), Formula::atom(R.Alpha));
  EXPECT_TRUE(Solver::entails(Strengthened, conjToFormula(Target)));
  EXPECT_TRUE(Solver::definitelySat(Strengthened));
}
