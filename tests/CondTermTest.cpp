//===- tests/CondTermTest.cpp - conditional termination ---------*- C++ -*-===//
//
// The conditional-termination regression fence. Default mode pins its
// goldens in CorpusGoldenTest; this suite pins the --cond-term mode:
//
//  1. The built-in soundness audit passes on the whole Fig. 11 corpus
//     (every emitted condition confirmed, zero demotions), verdicts
//     are UNCHANGED from the default-mode goldens (the condition is an
//     annotation, never an answer), and the Unknown programs — the
//     ones the paper's table leaves blank — get a nontrivial condition
//     (strictly between false and true): the mode's reason to exist.
//  2. Byte-identical rendered outcomes for any thread count (the batch
//     determinism contract extends to the CondTerm pass: obligations
//     are built from per-group case trees and already-published callee
//     conditions, both of which are scheduling-independent).
//  3. Byte-identical rendered outcomes cold vs. warm through the spec
//     store (conditions ride the v3 "tc" entry field; a warm replay
//     rehydrates rather than re-infers).
//
//===----------------------------------------------------------------------===//

#include "api/BatchAnalyzer.h"
#include "store/SpecStore.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

using namespace tnt;

namespace {

BatchOptions condTermOptions(unsigned Threads) {
  BatchOptions Opt;
  Opt.Threads = Threads;
  Opt.Program.Solve.EnableCondTerm = true;
  return Opt;
}

/// Does any method of the program publish a condition strictly between
/// false and true? (Mirror of the batch table's Cond column.)
bool hasNonTrivialCond(const BatchProgramResult &P) {
  for (const MethodResult &MR : P.Result.Methods)
    if (MR.Summary.HasTermCond && !MR.Summary.TermCond.isTop() &&
        !MR.Summary.TermCond.isBottom())
      return true;
  return false;
}

} // namespace

TEST(CondTerm, Fig11AuditCleanVerdictsUnchangedUnknownsGetConditions) {
  std::vector<BatchItem> Items = loopBasedBatchItems();
  ASSERT_EQ(Items.size(), 221u);

  BatchAnalyzer BA(condTermOptions(4));
  BatchResult R = BA.run(Items);

  // 1. Every emitted condition survived the end-to-end prover audit.
  EXPECT_GT(R.CondTerm.Emitted, 0u);
  EXPECT_EQ(R.CondTerm.Sound, R.CondTerm.Emitted);
  EXPECT_EQ(R.CondTerm.Demoted, 0u) << "a condition failed its audit";
  EXPECT_GT(R.CondTerm.NonTrivial, 0u);

  // 2. Verdicts match the default-mode Fig. 11 goldens exactly
  // (CorpusGoldenTest pins the same counts without --cond-term): the
  // pass annotates, it must never flip an answer.
  CategoryCounts Total;
  for (const auto &[Cat, C] : R.perCategory()) {
    (void)Cat;
    Total.Yes += C.Yes;
    Total.No += C.No;
    Total.Unknown += C.Unknown;
    Total.Timeout += C.Timeout;
    Total.Cond += C.Cond;
  }
  EXPECT_EQ(Total.Yes, 171u);
  EXPECT_EQ(Total.No, 38u);
  EXPECT_EQ(Total.Unknown, 12u);
  EXPECT_EQ(Total.Timeout, 0u);

  // 3. Soundness against ground truth is unchanged too.
  std::vector<const BenchProgram *> Loop = loopBasedPrograms();
  ASSERT_EQ(Loop.size(), Items.size());
  for (size_t I = 0; I < Loop.size(); ++I)
    EXPECT_TRUE(soundAnswer(*Loop[I], R.Programs[I].Verdict))
        << Loop[I]->Name;

  // 4. The Unknown programs — where a bare verdict says nothing — get
  // a nontrivial condition. The acceptance bar is 6 of the 12; the
  // engine currently conditions all 12, pinned as a golden so a
  // synthesis regression is a conscious choice.
  unsigned UnknownWithCond = 0, Unknown = 0;
  for (const BatchProgramResult &P : R.Programs) {
    if (P.Verdict != Outcome::Unknown)
      continue;
    ++Unknown;
    if (hasNonTrivialCond(P))
      ++UnknownWithCond;
  }
  EXPECT_EQ(Unknown, 12u);
  EXPECT_GE(UnknownWithCond, 6u);
  EXPECT_EQ(UnknownWithCond, 12u); // Golden; re-pin consciously.

  // 5. The table's Cond column golden (crafted 30 + crafted-lit 47).
  EXPECT_EQ(Total.Cond, 77u);
}

TEST(CondTerm, ByteIdenticalAcrossThreadCounts) {
  // A corpus slice that includes the conditionally-terminating crafted
  // families (step-miss, gcd-like live in the first 39 programs), so
  // identity is checked on runs that actually synthesize conditions.
  std::vector<BatchItem> Items = loopBasedBatchItems();
  Items.resize(48);

  std::string Reference;
  {
    BatchResult R = BatchAnalyzer(condTermOptions(1)).run(Items);
    ASSERT_GT(R.CondTerm.NonTrivial, 0u) << "slice synthesized nothing";
    Reference = R.renderOutcomes();
  }
  for (unsigned Threads : {2u, 4u, 8u}) {
    BatchResult R = BatchAnalyzer(condTermOptions(Threads)).run(Items);
    EXPECT_EQ(R.renderOutcomes(), Reference) << Threads << " threads";
  }
}

TEST(CondTerm, ByteIdenticalColdVersusWarmStore) {
  std::vector<BatchItem> Items = loopBasedBatchItems();
  Items.resize(24);
  std::string Path = testing::TempDir() + "tnt_condterm_store_" +
                     std::to_string(::getpid()) + ".json";
  std::remove(Path.c_str());

  BatchOptions Opt = condTermOptions(2);
  std::string Cold;
  {
    SpecStore Store(SpecStore::configFingerprint(Opt.Program));
    Opt.Store = &Store;
    BatchResult R = BatchAnalyzer(Opt).run(Items);
    Cold = R.renderOutcomes();
    EXPECT_GT(R.CondTerm.NonTrivial, 0u);
    std::string Err;
    ASSERT_TRUE(Store.save(Path, &Err)) << Err;
  }
  EXPECT_NE(Cold.find("termcond"), std::string::npos);
  {
    SpecStore Store(SpecStore::configFingerprint(Opt.Program));
    std::string Err;
    ASSERT_TRUE(Store.load(Path, &Err)) << Err;
    Opt.Store = &Store;
    BatchResult R = BatchAnalyzer(Opt).run(Items);
    EXPECT_EQ(R.renderOutcomes(), Cold);
    EXPECT_EQ(R.StoreMisses, 0u) << "warm replay re-ran inference";
  }
  std::remove(Path.c_str());
}
