//===- tests/SolverContextTest.cpp - instance-based solver layer -*- C++ -*-===//
//
// Coverage for the SolverContext refactor: per-context cache/stats
// isolation, hit/miss accounting, LRU bounding, hash-consed interning
// pointer identity, and the legacy static facade forwarding.
//
//===----------------------------------------------------------------------===//

#include "arith/Intern.h"
#include "solver/Solver.h"
#include "solver/SolverContext.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

LinExpr ex(const char *N) { return LinExpr::var(mkVar(N)); }

Formula cmpf(const char *V, CmpKind K, int64_t C) {
  return Formula::cmp(ex(V), K, LinExpr(C));
}

TEST(SolverContext, ContextsDoNotShareCachesOrStats) {
  SolverContext A, B;
  Formula F = Formula::conj2(cmpf("scx_a", CmpKind::Ge, 0),
                             cmpf("scx_a", CmpKind::Le, 10));

  EXPECT_EQ(A.isSat(F), Tri::True);
  EXPECT_EQ(A.isSat(F), Tri::True);
  SolverStats SA = A.stats();
  EXPECT_GE(SA.SatQueries, 2u);
  EXPECT_GE(SA.CacheHits, 1u);

  // B never saw the query: no stats, and its first query is a miss.
  SolverStats SB = B.stats();
  EXPECT_EQ(SB.SatQueries, 0u);
  EXPECT_EQ(SB.CacheHits, 0u);
  EXPECT_EQ(B.cacheSize(), 0u);
  EXPECT_EQ(B.isSat(F), Tri::True);
  SB = B.stats();
  EXPECT_GE(SB.CacheMisses, 1u);
  EXPECT_EQ(SB.CacheHits, 0u);

  // Resetting one context's stats leaves the other untouched.
  A.resetStats();
  EXPECT_EQ(A.stats().SatQueries, 0u);
  EXPECT_GE(B.stats().SatQueries, 1u);
}

TEST(SolverContext, HitMissAccountingIsExact) {
  SolverContext SC;
  ConstraintConj Conj = {Constraint::make(ex("scx_h"), CmpKind::Ge, LinExpr(1)),
                         Constraint::make(ex("scx_h"), CmpKind::Le,
                                          LinExpr(5))};
  EXPECT_EQ(SC.isSatConj(Conj), Tri::True);
  SolverStats S1 = SC.stats();
  EXPECT_EQ(S1.SatQueries, 1u);
  EXPECT_EQ(S1.CacheMisses, 1u);
  EXPECT_EQ(S1.CacheHits, 0u);

  // Same conjunction, different order: canonical key, so a hit.
  ConstraintConj Rev(Conj.rbegin(), Conj.rend());
  EXPECT_EQ(SC.isSatConj(Rev), Tri::True);
  SolverStats S2 = SC.stats();
  EXPECT_EQ(S2.SatQueries, 2u);
  EXPECT_EQ(S2.CacheMisses, 1u);
  EXPECT_EQ(S2.CacheHits, 1u);
  EXPECT_EQ(S2.SatQueries, S2.CacheHits + S2.CacheMisses);
}

TEST(SolverContext, ZeroCapacityDisablesCaching) {
  SolverContext SC(/*CacheCapacity=*/0);
  EXPECT_FALSE(SC.cacheEnabled());
  Formula F = cmpf("scx_u", CmpKind::Ge, 3);
  EXPECT_EQ(SC.isSat(F), Tri::True);
  EXPECT_EQ(SC.isSat(F), Tri::True);
  SolverStats S = SC.stats();
  // Queries still count (fuel accounting), but a disabled cache records
  // no lookups at all — neither hits nor misses — so stats readers can
  // tell "disabled" apart from "0% hit rate".
  EXPECT_GE(S.SatQueries, 2u);
  EXPECT_EQ(S.CacheHits, 0u);
  EXPECT_EQ(S.CacheMisses, 0u);
  EXPECT_EQ(SC.cacheSize(), 0u);
}

TEST(SolverContext, LruEvictsLeastRecentlyUsed) {
  SolverContext SC(/*CacheCapacity=*/2);
  auto conj = [](const char *V) {
    return ConstraintConj{
        Constraint::make(LinExpr::var(mkVar(V)), CmpKind::Ge, LinExpr(0))};
  };
  (void)SC.isSatConj(conj("scx_l1")); // cache: {1}
  (void)SC.isSatConj(conj("scx_l2")); // cache: {1,2}
  (void)SC.isSatConj(conj("scx_l1")); // refresh 1; cache: {2,1}
  (void)SC.isSatConj(conj("scx_l3")); // evicts 2; cache: {1,3}
  EXPECT_EQ(SC.cacheSize(), 2u);
  EXPECT_EQ(SC.stats().CacheEvictions, 1u);

  uint64_t MissesBefore = SC.stats().CacheMisses;
  (void)SC.isSatConj(conj("scx_l1")); // still cached: hit
  EXPECT_EQ(SC.stats().CacheMisses, MissesBefore);
  (void)SC.isSatConj(conj("scx_l2")); // evicted: miss
  EXPECT_EQ(SC.stats().CacheMisses, MissesBefore + 1);
}

TEST(SolverContext, ClearCacheKeepsStats) {
  SolverContext SC;
  Formula F = cmpf("scx_c", CmpKind::Ge, 0);
  (void)SC.isSat(F);
  ASSERT_GT(SC.cacheSize(), 0u);
  uint64_t Queries = SC.stats().SatQueries;
  SC.clearCache();
  EXPECT_EQ(SC.cacheSize(), 0u);
  EXPECT_EQ(SC.stats().SatQueries, Queries);
}

//===----------------------------------------------------------------------===//
// Memoized toDNF
//===----------------------------------------------------------------------===//

namespace {

/// The variables of a DNF that are not free in \p F: the fresh
/// existential witnesses toNNF renamed apart.
std::set<VarId> witnessVars(const Formula &F,
                            const std::vector<ConstraintConj> &DNF) {
  std::set<VarId> Vs;
  for (const ConstraintConj &Conj : DNF)
    for (const Constraint &C : Conj)
      C.collectVars(Vs);
  for (VarId V : F.freeVars())
    Vs.erase(V);
  return Vs;
}

} // namespace

TEST(SolverContext, DnfMemoHitMissAccounting) {
  SolverContext SC;
  Formula F = Formula::disj2(cmpf("dnf_a", CmpKind::Ge, 1),
                             cmpf("dnf_b", CmpKind::Le, 2));
  auto D1 = SC.toDNF(F);
  auto D2 = SC.toDNF(F);
  ASSERT_TRUE(D1.has_value() && D2.has_value());
  // Quantifier-free: a memo hit is byte-identical to the fill.
  EXPECT_EQ(*D1, *D2);
  SolverStats S = SC.stats();
  EXPECT_EQ(S.DnfQueries, 2u);
  EXPECT_EQ(S.DnfMisses, 1u);
  EXPECT_EQ(S.DnfHits, 1u);
  EXPECT_EQ(SC.dnfMemoSize(), 1u);
}

TEST(SolverContext, DnfMemoTrivialFormulasBypassMemo) {
  SolverContext SC;
  (void)SC.toDNF(Formula::top());
  (void)SC.toDNF(Formula::bottom());
  (void)SC.toDNF(cmpf("dnf_t", CmpKind::Ge, 0));
  EXPECT_EQ(SC.stats().DnfQueries, 0u);
  EXPECT_EQ(SC.dnfMemoSize(), 0u);
}

TEST(SolverContext, DnfMemoRenamesExistentialWitnessPerRetrieval) {
  SolverContext SC;
  VarId W = mkVar("dnf_w");
  Formula F = Formula::conj2(
      cmpf("dnf_x", CmpKind::Ge, 0),
      Formula::exists({W}, Formula::cmp(LinExpr::var(W), CmpKind::Ge,
                                        ex("dnf_x"))));
  auto D1 = SC.toDNF(F);
  auto D2 = SC.toDNF(F);
  auto D3 = SC.toDNF(F);
  ASSERT_TRUE(D1.has_value() && D2.has_value() && D3.has_value());
  std::set<VarId> W1 = witnessVars(F, *D1);
  std::set<VarId> W2 = witnessVars(F, *D2);
  std::set<VarId> W3 = witnessVars(F, *D3);
  ASSERT_EQ(W1.size(), 1u);
  ASSERT_EQ(W2.size(), 1u);
  ASSERT_EQ(W3.size(), 1u);
  // Every retrieval gets its own fresh witness, exactly like repeated
  // unmemoized expansion — cached skeletons must not pin one name.
  EXPECT_NE(*W1.begin(), *W2.begin());
  EXPECT_NE(*W2.begin(), *W3.begin());
  EXPECT_NE(*W1.begin(), *W3.begin());
}

TEST(SolverContext, MemoizedDnfMatchesUnmemoizedModuloRenaming) {
  SolverContext SC;
  VarId W = mkVar("dnf_mw");
  Formula F = Formula::conj2(
      Formula::disj2(cmpf("dnf_m1", CmpKind::Ge, 1),
                     cmpf("dnf_m2", CmpKind::Le, 0)),
      Formula::exists({W}, Formula::cmp(LinExpr::var(W), CmpKind::Eq,
                                        ex("dnf_m1") + 1)));
  (void)SC.toDNF(F); // fill
  auto Memo = SC.toDNF(F); // retrieval: re-freshened skeleton
  auto Plain = F.toDNF();
  ASSERT_TRUE(Memo.has_value() && Plain.has_value());
  ASSERT_EQ(Memo->size(), Plain->size());
  std::set<VarId> WM = witnessVars(F, *Memo);
  std::set<VarId> WP = witnessVars(F, *Plain);
  ASSERT_EQ(WM.size(), 1u);
  ASSERT_EQ(WP.size(), 1u);
  // Renaming both witnesses to one canonical variable makes the DNFs
  // coincide clause for clause.
  VarId Canon = mkVar("dnf_canon");
  std::map<VarId, VarId> RM{{*WM.begin(), Canon}};
  std::map<VarId, VarId> RP{{*WP.begin(), Canon}};
  for (size_t I = 0; I < Memo->size(); ++I) {
    ASSERT_EQ((*Memo)[I].size(), (*Plain)[I].size());
    for (size_t J = 0; J < (*Memo)[I].size(); ++J)
      EXPECT_EQ((*Memo)[I][J].rename(RM), (*Plain)[I][J].rename(RP));
  }
}

TEST(SolverContext, SimplifyEliminatesNegatedExistentialByProjection) {
  // simplify routes negated existentials through exact projection:
  // not (exists b . x < b) == not true == false.
  SolverContext SC;
  VarId B = mkVar("neg_sb");
  Formula Ex = Formula::exists(
      {B}, Formula::cmp(ex("neg_sx"), CmpKind::Lt, LinExpr::var(B)));
  Formula S = SC.simplify(Formula::neg(Ex));
  EXPECT_TRUE(S.isBottom());
}

TEST(SolverContext, DnfMemoOverflowEntriesRespectCap) {
  SolverContext SC;
  // (a1 || b1) && (a2 || b2): four clauses.
  Formula F = Formula::conj2(
      Formula::disj2(cmpf("dnf_o1", CmpKind::Le, 0),
                     cmpf("dnf_o1", CmpKind::Ge, 10)),
      Formula::disj2(cmpf("dnf_o2", CmpKind::Le, 0),
                     cmpf("dnf_o2", CmpKind::Ge, 10)));
  EXPECT_FALSE(SC.toDNF(F, 2).has_value()); // miss: overflow recorded
  EXPECT_FALSE(SC.toDNF(F, 2).has_value()); // hit on the overflow entry
  auto D = SC.toDNF(F, 16); // larger cap: must recompute
  ASSERT_TRUE(D.has_value());
  EXPECT_EQ(D->size(), 4u);
  // The stored skeleton now answers small caps as overflow, as a hit.
  EXPECT_FALSE(SC.toDNF(F, 2).has_value());
  SolverStats S = SC.stats();
  EXPECT_EQ(S.DnfQueries, 4u);
  EXPECT_EQ(S.DnfMisses, 2u);
  EXPECT_EQ(S.DnfHits, 2u);
}

TEST(SolverContext, DnfMemoLruEviction) {
  SolverContext SC(SolverContext::DefaultCacheCapacity,
                   /*DnfMemoCapacity=*/2);
  auto mk = [](const char *V) {
    return Formula::disj2(Formula::cmp(LinExpr::var(mkVar(V)), CmpKind::Le,
                                       LinExpr(0)),
                          Formula::cmp(LinExpr::var(mkVar(V)), CmpKind::Ge,
                                       LinExpr(10)));
  };
  Formula F1 = mk("dnf_l1"), F2 = mk("dnf_l2"), F3 = mk("dnf_l3");
  (void)SC.toDNF(F1);
  (void)SC.toDNF(F2);
  (void)SC.toDNF(F3); // evicts F1
  EXPECT_EQ(SC.dnfMemoSize(), 2u);
  EXPECT_EQ(SC.stats().DnfEvictions, 1u);
  (void)SC.toDNF(F1); // miss again
  EXPECT_EQ(SC.stats().DnfMisses, 4u);
}

TEST(SolverContext, DnfMemoDisabledAtZeroCapacity) {
  SolverContext SC(SolverContext::DefaultCacheCapacity,
                   /*DnfMemoCapacity=*/0);
  EXPECT_FALSE(SC.dnfMemoEnabled());
  Formula F = Formula::disj2(cmpf("dnf_z", CmpKind::Ge, 1),
                             cmpf("dnf_z", CmpKind::Le, -1));
  auto D1 = SC.toDNF(F);
  auto D2 = SC.toDNF(F);
  ASSERT_TRUE(D1.has_value() && D2.has_value());
  EXPECT_EQ(*D1, *D2);
  SolverStats S = SC.stats();
  EXPECT_EQ(S.DnfQueries, 2u);
  EXPECT_EQ(S.DnfHits, 0u);
  EXPECT_EQ(S.DnfMisses, 0u);
  EXPECT_EQ(SC.dnfMemoSize(), 0u);
}

TEST(ArithIntern, PointerIdentityForEqualTerms) {
  LinExpr E1 = ex("int_x") * 3 + ex("int_y") - 7;
  LinExpr E2 = ex("int_x") * 3 + ex("int_y") - 7;
  LinExpr E3 = ex("int_x") * 3 + ex("int_y") - 8;
  ASSERT_EQ(E1, E2);
  ArithIntern &I = ArithIntern::global();
  const LinExpr *P1 = I.expr(E1);
  const LinExpr *P2 = I.expr(E2);
  const LinExpr *P3 = I.expr(E3);
  EXPECT_EQ(P1, P2);
  EXPECT_NE(P1, P3);
  // Interned value is the value that went in.
  EXPECT_EQ(*P1, E1);

  Constraint C1 = Constraint::make(E1, CmpKind::Le, LinExpr(0));
  Constraint C2 = Constraint::make(E2, CmpKind::Le, LinExpr(0));
  Constraint C3 = Constraint::make(E1, CmpKind::Eq, LinExpr(0));
  EXPECT_EQ(I.constraint(C1), I.constraint(C2));
  EXPECT_NE(I.constraint(C1), I.constraint(C3));
}

TEST(ArithIntern, CanonicalConjunctionKey) {
  Constraint A = Constraint::make(ex("int_k1"), CmpKind::Ge, LinExpr(0));
  Constraint B = Constraint::make(ex("int_k2"), CmpKind::Le, LinExpr(9));
  InternedConj K1 = internConj({A, B});
  InternedConj K2 = internConj({B, A, B}); // order + duplicates
  EXPECT_EQ(K1, K2);
  EXPECT_EQ(K1.size(), 2u);
  EXPECT_EQ(InternedConjHash()(K1), InternedConjHash()(K2));
}

TEST(ArithIntern, FormulaNodesAreHashConsed) {
  Formula A = cmpf("int_f1", CmpKind::Ge, 0);
  Formula B = cmpf("int_f2", CmpKind::Le, 3);
  Formula F1 = Formula::conj2(A, B);
  size_t Mid = ArithIntern::global().formulaCount();
  // Re-building the same conjunction (either child order) allocates no
  // new node.
  Formula F2 = Formula::conj2(B, A);
  EXPECT_EQ(ArithIntern::global().formulaCount(), Mid);
  EXPECT_EQ(F1.node(), F2.node());
  // A genuinely new formula does.
  Formula G = Formula::neg(F1);
  EXPECT_GT(ArithIntern::global().formulaCount(), Mid);
  EXPECT_NE(G.node(), F1.node());
}

TEST(SolverFacade, ForwardsToDefaultContext) {
  Solver::resetStats();
  Formula F = Formula::conj2(cmpf("scx_f", CmpKind::Ge, 1),
                             cmpf("scx_f", CmpKind::Le, 4));
  EXPECT_EQ(Solver::isSat(F), Tri::True);
  EXPECT_EQ(Solver::isSat(F), Tri::True);
  Solver::Stats S = Solver::stats();
  EXPECT_GE(S.SatQueries, 2u);
  EXPECT_GE(S.CacheHits, 1u);
  // The facade and the default context are the same object.
  EXPECT_EQ(S.SatQueries, SolverContext::defaultCtx().stats().SatQueries);
}

} // namespace
