//===- tests/SolverContextTest.cpp - instance-based solver layer -*- C++ -*-===//
//
// Coverage for the SolverContext refactor: per-context cache/stats
// isolation, hit/miss accounting, LRU bounding, hash-consed interning
// pointer identity, and the legacy static facade forwarding.
//
//===----------------------------------------------------------------------===//

#include "arith/Intern.h"
#include "solver/Solver.h"
#include "solver/SolverContext.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

LinExpr ex(const char *N) { return LinExpr::var(mkVar(N)); }

Formula cmpf(const char *V, CmpKind K, int64_t C) {
  return Formula::cmp(ex(V), K, LinExpr(C));
}

TEST(SolverContext, ContextsDoNotShareCachesOrStats) {
  SolverContext A, B;
  Formula F = Formula::conj2(cmpf("scx_a", CmpKind::Ge, 0),
                             cmpf("scx_a", CmpKind::Le, 10));

  EXPECT_EQ(A.isSat(F), Tri::True);
  EXPECT_EQ(A.isSat(F), Tri::True);
  SolverStats SA = A.stats();
  EXPECT_GE(SA.SatQueries, 2u);
  EXPECT_GE(SA.CacheHits, 1u);

  // B never saw the query: no stats, and its first query is a miss.
  SolverStats SB = B.stats();
  EXPECT_EQ(SB.SatQueries, 0u);
  EXPECT_EQ(SB.CacheHits, 0u);
  EXPECT_EQ(B.cacheSize(), 0u);
  EXPECT_EQ(B.isSat(F), Tri::True);
  SB = B.stats();
  EXPECT_GE(SB.CacheMisses, 1u);
  EXPECT_EQ(SB.CacheHits, 0u);

  // Resetting one context's stats leaves the other untouched.
  A.resetStats();
  EXPECT_EQ(A.stats().SatQueries, 0u);
  EXPECT_GE(B.stats().SatQueries, 1u);
}

TEST(SolverContext, HitMissAccountingIsExact) {
  SolverContext SC;
  ConstraintConj Conj = {Constraint::make(ex("scx_h"), CmpKind::Ge, LinExpr(1)),
                         Constraint::make(ex("scx_h"), CmpKind::Le,
                                          LinExpr(5))};
  EXPECT_EQ(SC.isSatConj(Conj), Tri::True);
  SolverStats S1 = SC.stats();
  EXPECT_EQ(S1.SatQueries, 1u);
  EXPECT_EQ(S1.CacheMisses, 1u);
  EXPECT_EQ(S1.CacheHits, 0u);

  // Same conjunction, different order: canonical key, so a hit.
  ConstraintConj Rev(Conj.rbegin(), Conj.rend());
  EXPECT_EQ(SC.isSatConj(Rev), Tri::True);
  SolverStats S2 = SC.stats();
  EXPECT_EQ(S2.SatQueries, 2u);
  EXPECT_EQ(S2.CacheMisses, 1u);
  EXPECT_EQ(S2.CacheHits, 1u);
  EXPECT_EQ(S2.SatQueries, S2.CacheHits + S2.CacheMisses);
}

TEST(SolverContext, ZeroCapacityDisablesCaching) {
  SolverContext SC(/*CacheCapacity=*/0);
  Formula F = cmpf("scx_u", CmpKind::Ge, 3);
  EXPECT_EQ(SC.isSat(F), Tri::True);
  EXPECT_EQ(SC.isSat(F), Tri::True);
  SolverStats S = SC.stats();
  EXPECT_EQ(S.CacheHits, 0u);
  EXPECT_EQ(SC.cacheSize(), 0u);
  EXPECT_GE(S.CacheMisses, 2u);
}

TEST(SolverContext, LruEvictsLeastRecentlyUsed) {
  SolverContext SC(/*CacheCapacity=*/2);
  auto conj = [](const char *V) {
    return ConstraintConj{
        Constraint::make(LinExpr::var(mkVar(V)), CmpKind::Ge, LinExpr(0))};
  };
  (void)SC.isSatConj(conj("scx_l1")); // cache: {1}
  (void)SC.isSatConj(conj("scx_l2")); // cache: {1,2}
  (void)SC.isSatConj(conj("scx_l1")); // refresh 1; cache: {2,1}
  (void)SC.isSatConj(conj("scx_l3")); // evicts 2; cache: {1,3}
  EXPECT_EQ(SC.cacheSize(), 2u);
  EXPECT_EQ(SC.stats().CacheEvictions, 1u);

  uint64_t MissesBefore = SC.stats().CacheMisses;
  (void)SC.isSatConj(conj("scx_l1")); // still cached: hit
  EXPECT_EQ(SC.stats().CacheMisses, MissesBefore);
  (void)SC.isSatConj(conj("scx_l2")); // evicted: miss
  EXPECT_EQ(SC.stats().CacheMisses, MissesBefore + 1);
}

TEST(SolverContext, ClearCacheKeepsStats) {
  SolverContext SC;
  Formula F = cmpf("scx_c", CmpKind::Ge, 0);
  (void)SC.isSat(F);
  ASSERT_GT(SC.cacheSize(), 0u);
  uint64_t Queries = SC.stats().SatQueries;
  SC.clearCache();
  EXPECT_EQ(SC.cacheSize(), 0u);
  EXPECT_EQ(SC.stats().SatQueries, Queries);
}

TEST(ArithIntern, PointerIdentityForEqualTerms) {
  LinExpr E1 = ex("int_x") * 3 + ex("int_y") - 7;
  LinExpr E2 = ex("int_x") * 3 + ex("int_y") - 7;
  LinExpr E3 = ex("int_x") * 3 + ex("int_y") - 8;
  ASSERT_EQ(E1, E2);
  ArithIntern &I = ArithIntern::global();
  const LinExpr *P1 = I.expr(E1);
  const LinExpr *P2 = I.expr(E2);
  const LinExpr *P3 = I.expr(E3);
  EXPECT_EQ(P1, P2);
  EXPECT_NE(P1, P3);
  // Interned value is the value that went in.
  EXPECT_EQ(*P1, E1);

  Constraint C1 = Constraint::make(E1, CmpKind::Le, LinExpr(0));
  Constraint C2 = Constraint::make(E2, CmpKind::Le, LinExpr(0));
  Constraint C3 = Constraint::make(E1, CmpKind::Eq, LinExpr(0));
  EXPECT_EQ(I.constraint(C1), I.constraint(C2));
  EXPECT_NE(I.constraint(C1), I.constraint(C3));
}

TEST(ArithIntern, CanonicalConjunctionKey) {
  Constraint A = Constraint::make(ex("int_k1"), CmpKind::Ge, LinExpr(0));
  Constraint B = Constraint::make(ex("int_k2"), CmpKind::Le, LinExpr(9));
  InternedConj K1 = internConj({A, B});
  InternedConj K2 = internConj({B, A, B}); // order + duplicates
  EXPECT_EQ(K1, K2);
  EXPECT_EQ(K1.size(), 2u);
  EXPECT_EQ(InternedConjHash()(K1), InternedConjHash()(K2));
}

TEST(SolverFacade, ForwardsToDefaultContext) {
  Solver::resetStats();
  Formula F = Formula::conj2(cmpf("scx_f", CmpKind::Ge, 1),
                             cmpf("scx_f", CmpKind::Le, 4));
  EXPECT_EQ(Solver::isSat(F), Tri::True);
  EXPECT_EQ(Solver::isSat(F), Tri::True);
  Solver::Stats S = Solver::stats();
  EXPECT_GE(S.SatQueries, 2u);
  EXPECT_GE(S.CacheHits, 1u);
  // The facade and the default context are the same object.
  EXPECT_EQ(S.SatQueries, SolverContext::defaultCtx().stats().SatQueries);
}

} // namespace
