//===- tests/LadderTest.cpp - solver query ladder integration ---*- C++ -*-===//
//
// The query ladder end to end: lemma subsumption over the global tier
// (watch-index probing, generation rotation, dedup), the persistent
// lemma snapshot through SpecStore (versioned section, stale-file
// discard), fuel-accounting transparency (identical FuelUsed with the
// ladder on and off, including under a budget cutoff), and batch
// byte-identity across ladder x threads x store warmth.
//
//===----------------------------------------------------------------------===//

#include "api/Analyzer.h"
#include "api/BatchAnalyzer.h"
#include "arith/Intern.h"
#include "solver/GlobalCache.h"
#include "store/SpecStore.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace tnt;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "tnt_ladder_" + Name + "_" +
         std::to_string(::getpid()) + ".json";
}

struct TempFile {
  std::string Path;
  explicit TempFile(const std::string &Name) : Path(tempPath(Name)) {
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

LinExpr ev(const char *N, int64_t Coeff = 1) {
  return LinExpr::var(mkVar(N), Coeff);
}

Constraint cmp(const LinExpr &L, CmpKind K, int64_t C) {
  return Constraint::make(L, K, LinExpr(C));
}

/// The canonical lemma for "x >= 5 && x <= 3" (sorted canon strings).
std::vector<std::string> clashCore(const char *Var) {
  std::vector<std::string> Core = {
      GlobalSolverCache::constraintCanon(cmp(ev(Var), CmpKind::Ge, 5)),
      GlobalSolverCache::constraintCanon(cmp(ev(Var), CmpKind::Le, 3))};
  std::sort(Core.begin(), Core.end());
  return Core;
}

/// A conjunction CONTAINING that clash plus satisfiable padding.
ConstraintConj clashSuperset(const char *Var, const char *Pad) {
  return {cmp(ev(Var), CmpKind::Ge, 5), cmp(ev(Pad), CmpKind::Ge, 0),
          cmp(ev(Var), CmpKind::Le, 3), cmp(ev(Pad), CmpKind::Le, 10)};
}

//===----------------------------------------------------------------------===//
// Lemma tier mechanics.
//===----------------------------------------------------------------------===//

TEST(LadderLemma, SubsumptionAnswersSupersets) {
  GlobalSolverCache G(64, 64);
  G.mergeLemmas({clashCore("ll_a")}, /*ProbesUsed=*/7);

  GlobalCacheStats S = G.stats();
  EXPECT_EQ(S.LemmaInserts, 1u);
  EXPECT_EQ(S.CoreProbes, 7u);
  EXPECT_EQ(S.LemmaEntries, 1u);

  // Any superset of the core is refuted — this key was never merged.
  bool LemmaHit = false;
  std::optional<Tri> R =
      G.lookupSat(internConj(clashSuperset("ll_a", "ll_p")), &LemmaHit);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, Tri::False);
  EXPECT_TRUE(LemmaHit);
  S = G.stats();
  EXPECT_EQ(S.LemmaHits, 1u);
  EXPECT_EQ(S.SatHits, 1u); // A lemma hit is a genuine tier answer.

  // Half the core present is no subsumption: miss, flag untouched.
  LemmaHit = false;
  ConstraintConj Partial = {cmp(ev("ll_a"), CmpKind::Ge, 5),
                            cmp(ev("ll_p"), CmpKind::Ge, 0)};
  EXPECT_FALSE(G.lookupSat(internConj(Partial), &LemmaHit).has_value());
  EXPECT_FALSE(LemmaHit);
}

TEST(LadderLemma, DuplicateCoresDedupByJoinedKey) {
  GlobalSolverCache G(64, 64);
  G.mergeLemmas({clashCore("ll_b")}, 0);
  G.mergeLemmas({clashCore("ll_b")}, 0);
  // Unsorted spelling of the same core dedups too (mergeLemmas sorts).
  std::vector<std::string> Rev = clashCore("ll_b");
  std::reverse(Rev.begin(), Rev.end());
  G.mergeLemmas({Rev}, 0);
  EXPECT_EQ(G.stats().LemmaInserts, 1u);
  EXPECT_EQ(G.stats().LemmaEntries, 1u);
}

TEST(LadderLemma, GenerationRotationKeepsPrevLookups) {
  GlobalSolverCache G(64, 64);
  G.mergeLemmas({clashCore("ll_c")}, 0);

  // Flood the current generation with synthetic cores until it
  // rotates; the real core must keep answering from the previous
  // generation (and would be re-promoted by any context that hit it).
  std::vector<std::vector<std::string>> Flood;
  for (size_t I = 0; I < GlobalSolverCache::LemmaCapacity; ++I)
    Flood.push_back({"zz_synth_" + std::to_string(I)});
  G.mergeLemmas(Flood, 0);

  GlobalCacheStats S = G.stats();
  EXPECT_EQ(S.LemmaRotations, 1u);
  EXPECT_EQ(S.LemmaPrevEntries, GlobalSolverCache::LemmaCapacity);
  EXPECT_EQ(S.LemmaEntries, 1u);

  bool LemmaHit = false;
  std::optional<Tri> R =
      G.lookupSat(internConj(clashSuperset("ll_c", "ll_q")), &LemmaHit);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, Tri::False);
  EXPECT_TRUE(LemmaHit);
  S = G.stats();
  EXPECT_EQ(S.LemmaPrevHits, 1u);
  EXPECT_EQ(S.LemmaHits, 1u); // Total; the prev hit is its only entry.
}

//===----------------------------------------------------------------------===//
// Persistent lemma snapshot (SpecStore round trip and versioning).
//===----------------------------------------------------------------------===//

TEST(LadderStore, LemmaSnapshotRoundTrip) {
  TempFile F("roundtrip");

  {
    GlobalSolverCache G(64, 64);
    G.mergeLemmas({clashCore("ls_a")}, 0);
    SpecStore S("ladder-fp");
    S.setLemmaSnapshot(G.exportLemmas());
    EXPECT_EQ(S.stats().LemmaSnapshotEntries, 1u);
    ASSERT_TRUE(S.save(F.Path));
  }

  SpecStore Loaded("ladder-fp");
  ASSERT_TRUE(Loaded.load(F.Path));
  EXPECT_FALSE(Loaded.stats().LoadDiscarded);
  ASSERT_EQ(Loaded.stats().LemmaSnapshotEntries, 1u);

  // A fresh process's tier warm-starts from the imported cores.
  GlobalSolverCache G2(64, 64);
  G2.importLemmaSnapshot(Loaded.lemmaSnapshot());
  bool LemmaHit = false;
  std::optional<Tri> R =
      G2.lookupSat(internConj(clashSuperset("ls_a", "ls_p")), &LemmaHit);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, Tri::False);
  EXPECT_TRUE(LemmaHit);
  GlobalCacheStats S = G2.stats();
  EXPECT_EQ(S.LemmaSnapshotHits, 1u);
  EXPECT_EQ(S.LemmaSnapshotEntries, 1u);
}

TEST(LadderStore, FingerprintIsCurrentAndStaleFilesDiscardCleanly) {
  // The spec-store fingerprint was bumped for the lemma-snapshot
  // section (v2), per-scenario termination conditions (v3), and the
  // per-group audited cond-term counters record (v4); files from
  // older shapes must be discarded wholesale (fresh run), never
  // half-imported or crashed on.
  AnalyzerConfig Cfg;
  std::string Fp = SpecStore::configFingerprint(Cfg);
  EXPECT_EQ(Fp.rfind("v4;", 0), 0u) << Fp;
  // The ladder A/B switch deliberately does NOT fingerprint: a store
  // written with the ladder on warm-starts a --no-ladder run (answers
  // are identical by the ladder invariant).
  AnalyzerConfig NoLadder = Cfg;
  NoLadder.Ladder = false;
  EXPECT_EQ(SpecStore::configFingerprint(NoLadder), Fp);

  TempFile F("stale");
  {
    SpecStore Old("v1;pre-ladder-config");
    GlobalSolverCache G(64, 64);
    G.mergeLemmas({clashCore("ls_b")}, 0);
    Old.setLemmaSnapshot(G.exportLemmas());
    ASSERT_TRUE(Old.save(F.Path));
  }
  SpecStore Fresh(Fp);
  ASSERT_TRUE(Fresh.load(F.Path)); // Discard is not an error.
  EXPECT_TRUE(Fresh.stats().LoadDiscarded);
  EXPECT_EQ(Fresh.stats().LemmaSnapshotEntries, 0u);
  EXPECT_TRUE(Fresh.lemmaSnapshot().empty());
}

TEST(LadderStore, UnknownLemmaSectionVersionIsSkipped) {
  TempFile F("badver");
  {
    SpecStore S("ladder-fp");
    GlobalSolverCache G(64, 64);
    G.mergeLemmas({clashCore("ls_c")}, 0);
    S.setLemmaSnapshot(G.exportLemmas());
    ASSERT_TRUE(S.save(F.Path));
  }

  // Rewrite the section version in place: a future producer's format.
  std::string Text;
  {
    std::ifstream In(F.Path);
    std::stringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }
  const std::string Tag = "\"solver_lemmas\":{\"version\":1";
  size_t Pos = Text.find(Tag);
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, Tag.size(), "\"solver_lemmas\":{\"version\":9");
  {
    std::ofstream Out(F.Path, std::ios::trunc);
    Out << Text;
  }

  // The unversioned-section contract: skip cleanly, import nothing,
  // keep the rest of the file.
  SpecStore Loaded("ladder-fp");
  ASSERT_TRUE(Loaded.load(F.Path));
  EXPECT_EQ(Loaded.stats().LemmaSnapshotEntries, 0u);
  EXPECT_TRUE(Loaded.lemmaSnapshot().empty());
}

//===----------------------------------------------------------------------===//
// Fuel transparency: the ladder changes which engine answers, never
// what any budget observes.
//===----------------------------------------------------------------------===//

const char *FuelProbeSource = R"(
int dec(int k)
{
  if (k <= 0) return 0;
  else return dec(k - 1);
}
int mix(int x, int y)
{
  if (x <= 0) return dec(y);
  else return mix(x - 1, y + 1);
}
int spin(int b)
{
  if (b < 0) return 0;
  else return spin(b + 1);
}
int main(int n)
{
  return mix(n, dec(n)) + spin(-1);
}
)";

TEST(Ladder, FuelUsedIdenticalOnAndOff) {
  AnalyzerConfig On, Off;
  Off.Ladder = false;
  AnalysisResult A = analyzeProgram(FuelProbeSource, On);
  AnalysisResult B = analyzeProgram(FuelProbeSource, Off);
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_GT(A.SolverUsage.IntervalUnsat + A.SolverUsage.IntervalSat, 0u)
      << "the probe program must actually exercise the prefilter";
  EXPECT_EQ(B.SolverUsage.IntervalUnsat + B.SolverUsage.IntervalSat, 0u);
  EXPECT_EQ(A.FuelUsed, B.FuelUsed);
  EXPECT_EQ(A.str(), B.str());
  EXPECT_EQ(A.Diagnostics, B.Diagnostics);
}

TEST(Ladder, BudgetCutoffIdenticalOnAndOff) {
  // A budget small enough to bite: the cutoff point (and therefore
  // the Timeout classification and everything downstream) must not
  // move when interval answers replace Omega answers, because both
  // charge the token identically.
  for (uint64_t Budget : {25u, 60u, 200u}) {
    AnalyzerConfig On, Off;
    On.FuelBudget = Off.FuelBudget = Budget;
    Off.Ladder = false;
    AnalysisResult A = analyzeProgram(FuelProbeSource, On);
    AnalysisResult B = analyzeProgram(FuelProbeSource, Off);
    EXPECT_EQ(A.FuelUsed, B.FuelUsed) << "budget=" << Budget;
    EXPECT_EQ(A.str(), B.str()) << "budget=" << Budget;
    EXPECT_EQ(outcomeStr(A.outcome()), outcomeStr(B.outcome()))
        << "budget=" << Budget;
  }
}

//===----------------------------------------------------------------------===//
// Batch byte-identity: ladder x threads x store warmth.
//===----------------------------------------------------------------------===//

std::vector<BatchItem> corpusSlice(size_t Denom) {
  const std::vector<BenchProgram> &All = corpus();
  std::vector<BatchItem> Items;
  size_t Step = All.size() / Denom;
  if (Step == 0)
    Step = 1;
  for (size_t I = 0; I < All.size(); I += Step) {
    BatchItem It;
    It.Name = All[I].Name;
    It.Category = All[I].Category;
    It.Source = All[I].Source;
    It.Entry = All[I].Entry;
    Items.push_back(std::move(It));
  }
  return Items;
}

TEST(Ladder, BatchByteIdenticalAcrossLadderThreadsAndWarmth) {
  std::vector<BatchItem> Items = corpusSlice(20);

  // Baseline plus a warm-start artifact: one cold ladder-on run whose
  // tier exports both the sat snapshot and the lemma snapshot.
  std::string Base;
  std::vector<std::pair<std::string, Tri>> SatSnap;
  std::vector<std::vector<std::string>> LemmaSnap;
  {
    BatchOptions Opt;
    Opt.Threads = 1;
    BatchAnalyzer BA(Opt);
    Base = BA.run(Items).renderOutcomes();
    SatSnap = BA.globalTier()->exportSatSnapshot();
    LemmaSnap = BA.globalTier()->exportLemmas();
  }
  ASSERT_FALSE(Base.empty());
  ASSERT_FALSE(LemmaSnap.empty());

  for (bool Ladder : {true, false}) {
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      for (bool Warm : {false, true}) {
        if (Ladder && Threads == 1 && !Warm)
          continue; // The baseline itself.
        BatchOptions Opt;
        Opt.Threads = Threads;
        Opt.Program.Ladder = Ladder;
        BatchAnalyzer BA(Opt);
        if (Warm) {
          BA.globalTier()->importSatSnapshot(SatSnap);
          BA.globalTier()->importLemmaSnapshot(LemmaSnap);
        }
        BatchResult R = BA.run(Items);
        EXPECT_EQ(Base, R.renderOutcomes())
            << "ladder=" << Ladder << " threads=" << Threads
            << " warm=" << Warm;
        if (!Ladder)
          EXPECT_EQ(R.Usage.IntervalUnsat + R.Usage.IntervalSat +
                        R.Global.LemmaInserts,
                    0u);
      }
    }
  }
}

TEST(Ladder, Fig11GoldenCountsAndCrossProgramLemmaHits) {
  // The fig11 acceptance gate: loop-based corpus counts pinned with
  // the ladder ON (same goldens as CorpusGoldenTest), nonzero lemma
  // traffic (cores learned by one program refuting queries of
  // another), and byte-equality against a ladder-off run.
  std::vector<BatchItem> Items = loopBasedBatchItems();
  ASSERT_EQ(Items.size(), 221u);

  BatchOptions On;
  On.Threads = 4;
  BatchAnalyzer BA(On);
  BatchResult R = BA.run(Items);

  CategoryCounts Agg;
  for (const BatchProgramResult &P : R.Programs) {
    switch (P.Verdict) {
    case Outcome::Yes:
      ++Agg.Yes;
      break;
    case Outcome::No:
      ++Agg.No;
      break;
    case Outcome::Unknown:
      ++Agg.Unknown;
      break;
    case Outcome::Timeout:
      ++Agg.Timeout;
      break;
    }
  }
  EXPECT_EQ(Agg.Yes, 171u);
  EXPECT_EQ(Agg.No, 38u);
  EXPECT_EQ(Agg.Unknown, 12u);
  EXPECT_EQ(Agg.Timeout, 0u);

  EXPECT_GT(R.Usage.IntervalUnsat, 0u);
  EXPECT_GT(R.Usage.IntervalSat, 0u);
  EXPECT_GT(R.Global.LemmaInserts, 0u);
  EXPECT_GT(R.Global.LemmaHits, 0u);
  EXPECT_GT(R.Usage.LemmaHits, 0u);
  // Lemma hits are tier answers: accounted inside GlobalSatHits.
  EXPECT_LE(R.Usage.LemmaHits, R.Usage.GlobalSatHits);

  BatchOptions Off = On;
  Off.Program.Ladder = false;
  BatchAnalyzer BOff(Off);
  EXPECT_EQ(R.renderOutcomes(), BOff.run(Items).renderOutcomes());
}

} // namespace
