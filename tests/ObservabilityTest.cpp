//===- tests/ObservabilityTest.cpp - metrics/trace fences ------*- C++ -*-===//
//
// The observability layer's regression fences, in three tiers:
//
//  * Unit: histogram bucket arithmetic (log2 buckets, exact
//    count/sum/min/max), counter exactness under concurrent adds, and
//    the registry snapshot's deterministic order and schema.
//
//  * Trace: spans and scoped tags round-trip through writeJson into
//    Chrome trace-event JSON that json::parse accepts, and a disabled
//    tracer collects nothing.
//
//  * The load-bearing invariant: observability is OUT-OF-BAND. Batch
//    analysis output (rendered outcomes and the category table) is
//    byte-identical with tracing + profiling on or off, at 1/2/4/8
//    threads; and the metrics verb answers the same schema on both the
//    serial and the concurrent server front end.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisServer.h"
#include "api/BatchAnalyzer.h"
#include "api/ConcurrentServer.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace tnt;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// RAII: whatever a test does with the tracer, leave it off and empty.
struct TraceQuiesce {
  ~TraceQuiesce() {
    trace::stop();
    trace::clear();
  }
};

/// The batch table minus its wall-clock column: times vary run to run
/// by design (the determinism contract covers outcomes, not timings),
/// so byte comparisons drop each row's final Time(ms) field.
std::string tableWithoutTimes(const std::string &Table) {
  std::istringstream In(Table);
  std::string Out, Line;
  while (std::getline(In, Line)) {
    size_t End = Line.find_last_not_of(" \t");
    size_t Cut = Line.find_last_of(" \t", End);
    std::string Prefix =
        Line.substr(0, Cut == std::string::npos ? End + 1 : Cut);
    // A right-aligned time pads to its own width; drop that too.
    size_t PEnd = Prefix.find_last_not_of(" \t");
    Out += PEnd == std::string::npos ? std::string() : Prefix.substr(0, PEnd + 1);
    Out += '\n';
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram / counter / registry units
//===----------------------------------------------------------------------===//

TEST(MetricsHistogram, BucketArithmetic) {
  using H = metrics::Histogram;
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds values of
  // bit width i: [2^(i-1), 2^i).
  EXPECT_EQ(H::bucketOf(0), 0u);
  EXPECT_EQ(H::bucketOf(1), 1u);
  EXPECT_EQ(H::bucketOf(2), 2u);
  EXPECT_EQ(H::bucketOf(3), 2u);
  EXPECT_EQ(H::bucketOf(4), 3u);
  EXPECT_EQ(H::bucketOf(7), 3u);
  EXPECT_EQ(H::bucketOf(8), 4u);
  EXPECT_EQ(H::bucketOf(1023), 10u);
  EXPECT_EQ(H::bucketOf(1024), 11u);
  // Clamped to the last bucket.
  EXPECT_EQ(H::bucketOf(UINT64_MAX), H::NumBuckets - 1);
  EXPECT_EQ(H::bucketOf(uint64_t{1} << 60), H::NumBuckets - 1);

  EXPECT_EQ(H::bucketLo(0), 0u);
  EXPECT_EQ(H::bucketLo(1), 1u);
  EXPECT_EQ(H::bucketLo(2), 2u);
  EXPECT_EQ(H::bucketLo(3), 4u);
  EXPECT_EQ(H::bucketLo(10), 512u);
  // Every representable value lands in the bucket whose range covers
  // it (below the clamp).
  for (unsigned I = 1; I + 1 < H::NumBuckets; ++I) {
    EXPECT_EQ(H::bucketOf(H::bucketLo(I)), I);
    EXPECT_EQ(H::bucketOf(H::bucketLo(I + 1) - 1), I);
  }
}

TEST(MetricsHistogram, ExactStatsAndReset) {
  metrics::Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // Empty: 0, not the internal sentinel.
  EXPECT_EQ(H.max(), 0u);
  for (uint64_t V : {uint64_t{0}, uint64_t{1}, uint64_t{3}, uint64_t{3},
                     uint64_t{100}})
    H.observe(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 107u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_EQ(H.bucketCount(0), 1u); // 0
  EXPECT_EQ(H.bucketCount(1), 1u); // 1
  EXPECT_EQ(H.bucketCount(2), 2u); // 3, 3
  EXPECT_EQ(H.bucketCount(7), 1u); // 100 in [64, 128)
  H.resetForTest();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.bucketCount(2), 0u);
}

TEST(MetricsCounter, ConcurrentAddsAreExact) {
  metrics::Counter &C =
      metrics::Registry::get().counter("obs_test.concurrent");
  C.resetForTest();
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&C] {
      for (uint64_t I = 0; I < PerThread; ++I)
        C.add(1);
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
}

TEST(MetricsRegistry, SnapshotIsDeterministicSortedAndSchemaStable) {
  metrics::Registry &R = metrics::Registry::get();
  // Register deliberately out of name order; the snapshot must come
  // out sorted regardless (std::map) and twice-identical.
  R.counter("obs_test.z_counter").resetForTest();
  R.counter("obs_test.z_counter").add(2);
  R.setGauge("obs_test.a_gauge", -3);
  metrics::Histogram &H = R.histogram("obs_test.m_hist");
  H.resetForTest();
  H.observe(5);

  std::string S1 = R.snapshotJson();
  std::string S2 = R.snapshotJson();
  EXPECT_EQ(S1, S2) << "snapshot of unchanged state not byte-stable";

  // Schema pin: valid JSON, three top-level objects, exact histogram
  // field order, and [lo, count] bucket pairs.
  std::string Err;
  std::optional<json::Value> V = json::parse(S1, &Err);
  ASSERT_TRUE(V && V->isObject()) << Err;
  for (const char *Key : {"counters", "gauges", "histograms"}) {
    const json::Value *Sec = V->field(Key);
    ASSERT_TRUE(Sec != nullptr && Sec->isObject()) << Key;
  }
  EXPECT_NE(S1.find("\"obs_test.z_counter\":2"), std::string::npos);
  EXPECT_NE(S1.find("\"obs_test.a_gauge\":-3"), std::string::npos);
  EXPECT_NE(S1.find("\"obs_test.m_hist\":{\"count\":1,\"sum\":5,"
                    "\"min\":5,\"max\":5,\"buckets\":[[4,1]]}"),
            std::string::npos)
      << S1;

  // Name-sorted within a section: a_gauge precedes any later gauge the
  // process registered; cheapest meaningful check is the two obs_test
  // counters vs histograms living in their own sections, plus sorted
  // keys inside "gauges".
  const json::Value *Gauges = V->field("gauges");
  std::string Prev;
  for (const auto &[Name, Val] : Gauges->members()) {
    (void)Val;
    EXPECT_LT(Prev, Name) << "gauges not name-sorted";
    Prev = Name;
  }
}

//===----------------------------------------------------------------------===//
// Trace
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledCollectsNothing) {
  TraceQuiesce Q;
  trace::stop();
  trace::clear();
  {
    trace::Span S("dead", "test");
    S.arg("k", "v");
    trace::ScopedTag T("tag", "val");
    trace::Span S2("dead2", "test");
  }
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(trace::eventCount(), 0u);
  EXPECT_EQ(trace::dropCount(), 0u);
}

TEST(Trace, SpansTagsAndChromeJsonRoundTrip) {
  TraceQuiesce Q;
  trace::start();
  ASSERT_TRUE(trace::enabled());
  {
    trace::ScopedTag Tag("program", "prog_a");
    trace::Span Outer("outer", "test");
    Outer.arg("key", "value \"quoted\"");
    { trace::Span Inner("inner", "test"); }
  }
  { trace::Span Untagged("untagged", "test"); }
  trace::stop();
  EXPECT_EQ(trace::eventCount(), 3u);

  std::string Path =
      (std::filesystem::temp_directory_path() / "obs_trace_test.json")
          .string();
  std::string Err;
  ASSERT_TRUE(trace::writeJson(Path, &Err)) << Err;
  std::optional<json::Value> V = json::parse(readFile(Path), &Err);
  ASSERT_TRUE(V && V->isObject()) << Err;
  const json::Value *Events = V->field("traceEvents");
  ASSERT_TRUE(Events != nullptr && Events->isArray());
  ASSERT_EQ(Events->elements().size(), 3u);

  bool SawOuter = false, SawInner = false, SawUntagged = false;
  for (const json::Value &E : Events->elements()) {
    ASSERT_TRUE(E.isObject());
    const json::Value *Name = E.field("name");
    ASSERT_TRUE(Name != nullptr && Name->isString());
    // Complete events with the mandatory Chrome fields.
    EXPECT_EQ(E.field("ph")->asString(), "X");
    EXPECT_TRUE(E.field("ts")->isNumber());
    EXPECT_TRUE(E.field("dur")->isNumber());
    EXPECT_TRUE(E.field("pid")->isNumber());
    EXPECT_TRUE(E.field("tid")->isNumber());
    const json::Value *Args = E.field("args");
    ASSERT_TRUE(Args != nullptr && Args->isObject());
    if (Name->asString() == "outer") {
      SawOuter = true;
      EXPECT_EQ(Args->field("program")->asString(), "prog_a");
      EXPECT_EQ(Args->field("key")->asString(), "value \"quoted\"");
    } else if (Name->asString() == "inner") {
      SawInner = true;
      // The live tag was captured by the nested span too.
      EXPECT_EQ(Args->field("program")->asString(), "prog_a");
    } else if (Name->asString() == "untagged") {
      SawUntagged = true;
      EXPECT_EQ(Args->field("program"), nullptr);
    }
  }
  EXPECT_TRUE(SawOuter && SawInner && SawUntagged);
  std::filesystem::remove(Path);
}

//===----------------------------------------------------------------------===//
// The out-of-band invariant
//===----------------------------------------------------------------------===//

TEST(Observability, BatchBytesIdenticalWithTracingAndProfilingOn) {
  TraceQuiesce Q;
  std::vector<BatchItem> Items = corpusBatchItems(10);

  // Baseline: observability cold, serial.
  BatchOptions Base;
  Base.Threads = 1;
  BatchAnalyzer BaseBA(Base);
  BatchResult Ref = BaseBA.run(Items);
  std::string RefOutcomes = Ref.renderOutcomes();
  std::string RefTable = tableWithoutTimes(Ref.table());
  ASSERT_FALSE(RefOutcomes.empty());

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    trace::start(); // Hot tracer, profile capture on, any thread count:
    BatchOptions Opt;
    Opt.Threads = Threads;
    Opt.Profile = true;
    BatchAnalyzer BA(Opt);
    BatchResult R = BA.run(Items);
    trace::stop();
    EXPECT_EQ(R.renderOutcomes(), RefOutcomes)
        << "tracing/profiling changed analysis output at " << Threads
        << " threads";
    EXPECT_EQ(tableWithoutTimes(R.table()), RefTable)
        << "tracing/profiling changed the batch table at " << Threads
        << " threads";
    EXPECT_GT(trace::eventCount(), 0u) << "tracer was on but saw nothing";
    // Profile rows cover every group, in deterministic (program,
    // group) order; the rendered table is non-empty and capped.
    size_t Groups = 0;
    for (const BatchProgramResult &P : R.Programs)
      Groups += P.Result.GroupCount;
    EXPECT_EQ(R.Profile.size(), Groups);
    EXPECT_NE(R.profileTable().find("Slowest groups"), std::string::npos);
    trace::clear();
  }

  // Without Profile, no rows are captured and the table renders empty.
  EXPECT_TRUE(Ref.Profile.empty());
  EXPECT_EQ(Ref.profileTable(), "");
}

TEST(Observability, MetricsVerbSameSchemaOnBothFrontEnds) {
  const std::string Prog = corpusBatchItems(1)[0].Source;
  auto checkMetricsResponse = [](const std::string &Response) {
    std::string Err;
    std::optional<json::Value> V = json::parse(Response, &Err);
    ASSERT_TRUE(V && V->isObject()) << Err << " in " << Response;
    ASSERT_TRUE(V->field("ok") != nullptr && V->field("ok")->asBool());
    const json::Value *M = V->field("metrics");
    ASSERT_TRUE(M != nullptr && M->isObject());
    for (const char *Key : {"counters", "gauges", "histograms"}) {
      const json::Value *Sec = M->field(Key);
      ASSERT_TRUE(Sec != nullptr && Sec->isObject()) << Key;
    }
    // The bridged engine gauges and the event-driven request
    // histograms are both present — the one-snapshot promise.
    const json::Value *Gauges = M->field("gauges");
    EXPECT_NE(Gauges->field("server.requests"), nullptr);
    EXPECT_NE(Gauges->field("solver.sat_queries"), nullptr);
    EXPECT_NE(Gauges->field("tier.sat_lookups"), nullptr);
    EXPECT_NE(Gauges->field("cond_term.emitted"), nullptr);
    const json::Value *Hists = M->field("histograms");
    const json::Value *Exec = Hists->field("server.request.exec_us");
    ASSERT_NE(Exec, nullptr);
    EXPECT_GE(json::toInt64(*Exec->field("count")).value_or(0), 1);
    ASSERT_NE(Hists->field("server.request.queue_us"), nullptr);
    ASSERT_NE(Hists->field("server.request.total_us"), nullptr);
  };

  {
    AnalysisServer Server;
    std::string R1 = Server.handleLine(
        "{\"id\":1,\"program\":" + json::quoted(Prog) + "}");
    ASSERT_NE(R1.find("\"ok\":true"), std::string::npos) << R1;
    checkMetricsResponse(Server.handleLine("{\"id\":2,\"verb\":\"metrics\"}"));
  }
  {
    ConcurrentAnalysisServer Server;
    std::string R1 = Server.submitAndWait(
        "{\"id\":1,\"program\":" + json::quoted(Prog) + "}");
    ASSERT_NE(R1.find("\"ok\":true"), std::string::npos) << R1;
    checkMetricsResponse(
        Server.submitAndWait("{\"id\":2,\"verb\":\"metrics\"}"));
  }
}
