//===- tests/UnsatCoreTest.cpp - deletion-filter core extraction -*- C++ -*-===//
//
// shrinkUnsatCore in isolation: minimality against the Omega oracle,
// determinism (the core is a pure function of the input), sound early
// exit on budget exhaustion, and cooperative cancellation.
//
//===----------------------------------------------------------------------===//

#include "arith/Intern.h"
#include "solver/Cancellation.h"
#include "solver/Omega.h"
#include "solver/UnsatCore.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

LinExpr ev(const char *N, int64_t Coeff = 1) {
  return LinExpr::var(mkVar(N), Coeff);
}

Constraint cmp(const LinExpr &L, CmpKind K, int64_t C) {
  return Constraint::make(L, K, LinExpr(C));
}

Tri omega(const ConstraintConj &C) { return Omega::isSatConj(C); }

/// x >= 5 && x <= 3 buried in satisfiable padding about y.
ConstraintConj paddedClash() {
  return {cmp(ev("uc_x"), CmpKind::Ge, 5), cmp(ev("uc_y"), CmpKind::Ge, 0),
          cmp(ev("uc_x"), CmpKind::Le, 3), cmp(ev("uc_y"), CmpKind::Le, 10)};
}

TEST(UnsatCore, ShrinksToTheMinimalClash) {
  ConstraintConj Conj = paddedClash();
  ASSERT_EQ(omega(Conj), Tri::False);

  uint64_t Budget = 100, Probes = 0;
  ConstraintConj Core =
      shrinkUnsatCore(Conj, omega, Budget, &Probes, nullptr);

  ASSERT_EQ(Core.size(), 2u);
  EXPECT_EQ(omega(Core), Tri::False);
  EXPECT_GT(Probes, 0u);
  EXPECT_EQ(Budget + Probes, 100u);
  // The padding about y is gone; both x atoms remain.
  for (const Constraint &C : Core) {
    std::set<VarId> Vars;
    C.collectVars(Vars);
    EXPECT_EQ(Vars.size(), 1u);
  }
}

TEST(UnsatCore, DeterministicAcrossRuns) {
  ConstraintConj Conj = paddedClash();
  uint64_t B1 = 100, B2 = 100;
  ConstraintConj A = shrinkUnsatCore(Conj, omega, B1, nullptr, nullptr);
  ConstraintConj B = shrinkUnsatCore(Conj, omega, B2, nullptr, nullptr);
  EXPECT_EQ(A, B);
  EXPECT_EQ(B1, B2);
}

TEST(UnsatCore, ZeroBudgetReturnsInputUnchanged) {
  ConstraintConj Conj = paddedClash();
  uint64_t Budget = 0, Probes = 0;
  ConstraintConj Core =
      shrinkUnsatCore(Conj, omega, Budget, &Probes, nullptr);
  EXPECT_EQ(Core, Conj); // Still UNSAT, just not minimal.
  EXPECT_EQ(Probes, 0u);
}

TEST(UnsatCore, ExhaustedBudgetStillReturnsUnsatSubset) {
  ConstraintConj Conj = paddedClash();
  uint64_t Budget = 1, Probes = 0;
  ConstraintConj Core =
      shrinkUnsatCore(Conj, omega, Budget, &Probes, nullptr);
  EXPECT_EQ(Probes, 1u);
  EXPECT_EQ(Budget, 0u);
  // The invariant "current set is UNSAT" holds at every step, so the
  // partial result is a sound lemma.
  EXPECT_EQ(omega(Core), Tri::False);
  EXPECT_LE(Core.size(), Conj.size());
}

TEST(UnsatCore, CancellationStopsProbing) {
  ConstraintConj Conj = paddedClash();
  CancellationToken Token(0);
  Token.charge(); // Budget 0: the first charge flips it.
  ASSERT_TRUE(Token.cancelled());

  uint64_t Budget = 100, Probes = 0;
  ConstraintConj Core =
      shrinkUnsatCore(Conj, omega, Budget, &Probes, &Token);
  EXPECT_EQ(Probes, 0u);
  EXPECT_EQ(Budget, 100u);
  EXPECT_EQ(Core, Conj);
}

TEST(UnsatCore, SingletonInputNeedsNoProbes) {
  // 1 <= 0: already minimal; the loop's size > 1 guard must not probe.
  ConstraintConj Conj = {Constraint::leZero(LinExpr(1))};
  uint64_t Budget = 100, Probes = 0;
  ConstraintConj Core =
      shrinkUnsatCore(Conj, omega, Budget, &Probes, nullptr);
  EXPECT_EQ(Core, Conj);
  EXPECT_EQ(Probes, 0u);
}

} // namespace
