//===- tests/HeapTest.cpp - separation-logic substrate ---------*- C++ -*-===//

#include "heap/Entail.h"
#include "lang/Parser.h"
#include "solver/Solver.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

const char *ListDefs = R"(
data node { node next; }
pred lseg(root, q, n) == root = q & n = 0
  or root |-> node(p) * lseg(p, q, n - 1);
pred cll(root, n) == root |-> node(p) * lseg(p, root, n - 1);
)";

struct HeapFixture : ::testing::Test {
  DiagnosticEngine Diags;
  Program P;
  std::unique_ptr<HeapEnv> Env;
  std::unique_ptr<HeapProver> Prover;

  void SetUp() override {
    std::optional<Program> Parsed = parseProgram(ListDefs, Diags);
    ASSERT_TRUE(Parsed.has_value()) << Diags.str();
    P = std::move(*Parsed);
    Env = std::make_unique<HeapEnv>(P);
    Prover = std::make_unique<HeapProver>(*Env);
  }

  HeapAtom lseg(VarId Root, const LinExpr &Q, const LinExpr &N) {
    HeapAtom A;
    A.K = HeapAtom::Kind::Pred;
    A.Name = "lseg";
    A.Args = {LinExpr::var(Root), Q, N};
    return A;
  }
  HeapAtom cll(VarId Root, const LinExpr &N) {
    HeapAtom A;
    A.K = HeapAtom::Kind::Pred;
    A.Name = "cll";
    A.Args = {LinExpr::var(Root), N};
    return A;
  }
  HeapAtom pts(VarId Root, const LinExpr &Next) {
    HeapAtom A;
    A.K = HeapAtom::Kind::PointsTo;
    A.Root = Root;
    A.Name = "node";
    A.Args = {Next};
    return A;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Predicate metadata
//===----------------------------------------------------------------------===//

TEST_F(HeapFixture, SizeInvariantsInferred) {
  // lseg's size is >= 0; cll's size is >= 1.
  VarId N = mkVar("hn");
  Formula LsegInv =
      Env->invariantAt("lseg", {LinExpr::var(mkVar("hr")),
                                LinExpr(0), LinExpr::var(N)});
  EXPECT_TRUE(Solver::entails(
      LsegInv, Formula::cmp(LinExpr::var(N), CmpKind::Ge, LinExpr(0))));

  Formula CllInv =
      Env->invariantAt("cll", {LinExpr::var(mkVar("hr")), LinExpr::var(N)});
  EXPECT_TRUE(Solver::entails(
      CllInv, Formula::cmp(LinExpr::var(N), CmpKind::Ge, LinExpr(1))));
}

TEST_F(HeapFixture, SegmentShapeDetected) {
  const PredInfo *Info = Env->pred("lseg");
  ASSERT_NE(Info, nullptr);
  EXPECT_TRUE(Info->IsSegment);
  EXPECT_EQ(Info->SegData, "node");
  const PredInfo *CInfo = Env->pred("cll");
  ASSERT_NE(CInfo, nullptr);
  EXPECT_FALSE(CInfo->IsSegment);
}

TEST_F(HeapFixture, UnfoldLseg) {
  VarId X = mkVar("hx"), N = mkVar("hn");
  std::vector<HeapEnv::UnfoldBranch> Bs =
      Env->unfold(lseg(X, LinExpr(0), LinExpr::var(N)));
  ASSERT_EQ(Bs.size(), 2u);
  // Base: x = 0 && n = 0, emp.
  EXPECT_TRUE(Bs[0].Atoms.empty());
  EXPECT_TRUE(Solver::entails(
      Bs[0].Pure, Formula::cmp(LinExpr::var(N), CmpKind::Eq, LinExpr(0))));
  // Rec: x |-> node(p) * lseg(p, 0, n-1) with fresh p.
  ASSERT_EQ(Bs[1].Atoms.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Materialization
//===----------------------------------------------------------------------===//

TEST_F(HeapFixture, MaterializeFromPointsTo) {
  VarId X = mkVar("hx"), Y = mkVar("hy");
  SymHeap H = {pts(X, LinExpr::var(Y))};
  auto R = Prover->materialize(Formula::top(), H, X);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->size(), 1u);
  EXPECT_EQ((*R)[0].PtsIndex, 0u);
}

TEST_F(HeapFixture, MaterializeUnfoldsPredicate) {
  VarId X = mkVar("hx"), N = mkVar("hn");
  // x != null rules out the base branch.
  Formula Pure = Formula::cmp(LinExpr::var(X), CmpKind::Ne, LinExpr(0));
  SymHeap H = {lseg(X, LinExpr(0), LinExpr::var(N))};
  auto R = Prover->materialize(Pure, H, X);
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->size(), 1u); // Base branch infeasible.
  const HeapAtom &Pt = (*R)[0].Heap[(*R)[0].PtsIndex];
  EXPECT_EQ(Pt.K, HeapAtom::Kind::PointsTo);
  EXPECT_EQ(Pt.Root, X);
  // The unfolding pins n >= 1 implicitly via n - 1 = size of the tail;
  // at minimum the branch pure must be consistent.
  EXPECT_NE(Solver::isSat(Formula::conj2(Pure, (*R)[0].PureAdd)),
            Tri::False);
}

TEST_F(HeapFixture, MaterializeFailsOnEmptyHeap) {
  VarId X = mkVar("hx");
  EXPECT_FALSE(Prover->materialize(Formula::top(), {}, X).has_value());
}

//===----------------------------------------------------------------------===//
// Entailment
//===----------------------------------------------------------------------===//

TEST_F(HeapFixture, DirectPointsToMatchWithFrame) {
  VarId X = mkVar("hx"), Y = mkVar("hy"), Z = mkVar("hz");
  SymHeap Src = {pts(X, LinExpr::var(Y)), pts(Z, LinExpr(0))};
  SymHeap Tgt = {pts(X, LinExpr::var(Y))};
  auto R = Prover->entail(Formula::top(), Src, Tgt, {});
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->size(), 1u);
  EXPECT_EQ((*R)[0].Frame.size(), 1u);
  EXPECT_EQ((*R)[0].Frame[0].Root, Z);
}

TEST_F(HeapFixture, GhostUnificationBindsSize) {
  VarId X = mkVar("hx"), N = mkVar("hn"), M = mkVar("hm");
  // lseg(x, 0, n) |- lseg(x, 0, m) binds m := n.
  SymHeap Src = {lseg(X, LinExpr(0), LinExpr::var(N))};
  SymHeap Tgt = {lseg(X, LinExpr(0), LinExpr::var(M))};
  auto R = Prover->entail(Formula::top(), Src, Tgt, {M});
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->size(), 1u);
  auto It = (*R)[0].Bindings.find(M);
  ASSERT_NE(It, (*R)[0].Bindings.end());
  EXPECT_EQ(It->second, LinExpr::var(N));
}

TEST_F(HeapFixture, FoldEmptySegment) {
  // emp |- lseg(x, x, m) with m ghost: folds to the base, m := 0.
  VarId X = mkVar("hx"), M = mkVar("hm");
  SymHeap Tgt = {lseg(X, LinExpr::var(X), LinExpr::var(M))};
  auto R = Prover->entail(Formula::top(), {}, Tgt, {M});
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(Solver::entails(
      (*R)[0].PureAdd, Formula::cmp(LinExpr::var(M), CmpKind::Eq,
                                    LinExpr(0))));
}

TEST_F(HeapFixture, FoldOneCell) {
  // x |-> node(y) * lseg(y, 0, k) |- lseg(x, 0, m): m := k + 1.
  VarId X = mkVar("hx"), Y = mkVar("hy"), K = mkVar("hk"), M = mkVar("hm");
  SymHeap Src = {pts(X, LinExpr::var(Y)),
                 lseg(Y, LinExpr(0), LinExpr::var(K))};
  SymHeap Tgt = {lseg(X, LinExpr(0), LinExpr::var(M))};
  auto R = Prover->entail(Formula::top(), Src, Tgt, {M});
  ASSERT_TRUE(R.has_value());
  Formula Bind = (*R)[0].PureAdd;
  EXPECT_TRUE(Solver::entails(
      Bind, Formula::cmp(LinExpr::var(M), CmpKind::Eq,
                         LinExpr::var(K) + 1)));
}

TEST_F(HeapFixture, SegmentTailLemma) {
  // lseg(a, b, n) * b |-> node(c) |- lseg(a, c, m): m := n + 1.
  VarId A = mkVar("ha"), B = mkVar("hb"), C = mkVar("hc"),
        N = mkVar("hn"), M = mkVar("hm");
  SymHeap Src = {lseg(A, LinExpr::var(B), LinExpr::var(N)),
                 pts(B, LinExpr::var(C))};
  SymHeap Tgt = {lseg(A, LinExpr::var(C), LinExpr::var(M))};
  auto R = Prover->entail(Formula::top(), Src, Tgt, {M});
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(Solver::entails(
      (*R)[0].PureAdd, Formula::cmp(LinExpr::var(M), CmpKind::Eq,
                                    LinExpr::var(N) + 1)));
}

TEST_F(HeapFixture, CllRotation) {
  // The crux of the paper's append-on-cll scenario:
  //   x |-> node(p) * lseg(p, x, n - 1)  |-  cll(p, m)
  // via source unfolding plus the tail lemma; in every branch m = n.
  VarId X = mkVar("hx"), Pv = mkVar("hp"), N = mkVar("hn"), M = mkVar("hm");
  SymHeap Src = {pts(X, LinExpr::var(Pv)),
                 lseg(Pv, LinExpr::var(X), LinExpr::var(N) - 1)};
  SymHeap Tgt = {cll(Pv, LinExpr::var(M))};
  Formula Pure = Formula::cmp(LinExpr::var(N), CmpKind::Ge, LinExpr(1));
  auto R = Prover->entail(Pure, Src, Tgt, {M});
  ASSERT_TRUE(R.has_value());
  ASSERT_GE(R->size(), 1u);
  for (const HeapProver::Branch &Br : *R) {
    Formula All = Formula::conj2(Pure, Br.PureAdd);
    EXPECT_TRUE(Solver::entails(
        All, Formula::cmp(LinExpr::var(M), CmpKind::Eq, LinExpr::var(N))))
        << All.str();
  }
}

TEST_F(HeapFixture, EntailFailsOnMissingHeap) {
  VarId X = mkVar("hx"), Y = mkVar("hy");
  SymHeap Tgt = {pts(X, LinExpr::var(Y))};
  EXPECT_FALSE(Prover->entail(Formula::top(), {}, Tgt, {}).has_value());
}

TEST_F(HeapFixture, EntailRespectsDisequalities) {
  // x |-> node(y) |- z |-> node(y) must fail when x != z is possible,
  // and succeed when x = z is known.
  VarId X = mkVar("hx"), Y = mkVar("hy"), Z = mkVar("hz");
  SymHeap Src = {pts(X, LinExpr::var(Y))};
  SymHeap Tgt = {pts(Z, LinExpr::var(Y))};
  EXPECT_FALSE(Prover->entail(Formula::top(), Src, Tgt, {}).has_value());
  Formula Eq = Formula::cmp(LinExpr::var(X), CmpKind::Eq, LinExpr::var(Z));
  EXPECT_TRUE(Prover->entail(Eq, Src, Tgt, {}).has_value());
}
