//===- tests/InferTest.cpp - end-to-end inference on paper examples ------===//

#include "api/Analyzer.h"
#include "solver/Solver.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

AnalysisResult analyzeOk(const std::string &Src,
                         const AnalyzerConfig &Cfg = {}) {
  AnalysisResult R = analyzeProgram(Src, Cfg);
  EXPECT_TRUE(R.Ok) << R.Diagnostics;
  return R;
}

/// Checks that every inferred case intersecting \p Region has
/// classification \p K (the summary may partition the region more finely
/// than the paper's presentation).
void expectCase(const TntSummary &S, const Formula &Region,
                TemporalSpec::Kind K) {
  bool Intersected = false;
  for (const CaseOutcome &C : S.flatten()) {
    if (Solver::isSat(Formula::conj2(Region, C.Guard)) != Tri::True)
      continue;
    Intersected = true;
    EXPECT_EQ(C.Temporal.K, K)
        << "case " << C.Guard.str() << " intersects " << Region.str()
        << " with the wrong classification in\n"
        << S.str();
  }
  EXPECT_TRUE(Intersected) << "no case intersects " << Region.str();
}

LinExpr ex(const char *N) { return LinExpr::var(mkVar(N)); }

} // namespace

//===----------------------------------------------------------------------===//
// The running example (Fig. 1 / Section 2)
//===----------------------------------------------------------------------===//

TEST(InferFoo, PaperCaseSpec) {
  AnalysisResult R = analyzeOk(R"(
void foo(int x, int y)
{
  if (x < 0) return;
  else foo(x + y, y);
}
)");
  const MethodResult *M = R.find("foo");
  ASSERT_NE(M, nullptr);
  EXPECT_FALSE(M->SafetyFailed);
  // The paper derives:
  //   x <  0           -> Term
  //   x >= 0 && y <  0 -> Term[x]
  //   x >= 0 && y >= 0 -> Loop (post false)
  Formula XNeg = Formula::cmp(ex("x"), CmpKind::Lt, LinExpr(0));
  Formula TermCase = Formula::conj2(
      Formula::cmp(ex("x"), CmpKind::Ge, LinExpr(0)),
      Formula::cmp(ex("y"), CmpKind::Lt, LinExpr(0)));
  Formula LoopCase = Formula::conj2(
      Formula::cmp(ex("x"), CmpKind::Ge, LinExpr(0)),
      Formula::cmp(ex("y"), CmpKind::Ge, LinExpr(0)));
  expectCase(M->Summary, XNeg, TemporalSpec::Kind::Term);
  expectCase(M->Summary, TermCase, TemporalSpec::Kind::Term);
  expectCase(M->Summary, LoopCase, TemporalSpec::Kind::Loop);
  EXPECT_EQ(M->Summary.verdict(), TntSummary::Verdict::Conditional);
  EXPECT_TRUE(M->ReVerified);
}

TEST(InferFoo, LoopCasePostUnreachable) {
  AnalysisResult R = analyzeOk(R"(
void foo(int x, int y)
{
  if (x < 0) return;
  else foo(x + y, y);
}
)");
  const MethodResult *M = R.find("foo");
  ASSERT_NE(M, nullptr);
  for (const CaseOutcome &C : M->Summary.flatten()) {
    if (C.Temporal.K == TemporalSpec::Kind::Loop)
      EXPECT_FALSE(C.PostReachable);
    else
      EXPECT_TRUE(C.PostReachable);
  }
}

//===----------------------------------------------------------------------===//
// Simple terminating / non-terminating methods
//===----------------------------------------------------------------------===//

TEST(InferBasic, StraightLineIsTerm) {
  AnalysisResult R = analyzeOk("void m(int x) { x = x + 1; return; }");
  ASSERT_NE(R.find("m"), nullptr);
  EXPECT_EQ(R.find("m")->Summary.verdict(), TntSummary::Verdict::Terminating);
}

TEST(InferBasic, CountdownTerm) {
  AnalysisResult R = analyzeOk(R"(
void cd(int n)
{
  if (n <= 0) return;
  else cd(n - 1);
}
)");
  EXPECT_EQ(R.find("cd")->Summary.verdict(),
            TntSummary::Verdict::Terminating);
}

TEST(InferBasic, AlwaysLoop) {
  AnalysisResult R = analyzeOk("void lp(int x) { lp(x + 1); }");
  const MethodResult *M = R.find("lp");
  EXPECT_EQ(M->Summary.verdict(), TntSummary::Verdict::NonTerminating);
  EXPECT_TRUE(M->ReVerified);
}

TEST(InferBasic, WhileLoopLowered) {
  AnalysisResult R = analyzeOk(R"(
void m(int i, int n)
{
  while (i < n) { i = i + 1; }
}
)");
  // Both the wrapper and the loop method terminate.
  EXPECT_EQ(R.outcome("m"), Outcome::Yes);
}

TEST(InferBasic, InfiniteWhile) {
  AnalysisResult R = analyzeOk(R"(
void m(int i)
{
  while (i >= 0) { i = i + 1; }
}
)");
  const MethodResult *M = R.find("m");
  // For i >= 0 the loop diverges; for i < 0 it exits: conditional.
  EXPECT_EQ(M->Summary.verdict(), TntSummary::Verdict::Conditional);
}

TEST(InferBasic, MutualRecursion) {
  AnalysisResult R = analyzeOk(R"(
void even(int n)
{
  if (n == 0) return;
  else odd(n - 1);
}
void odd(int n)
{
  if (n == 0) return;
  else even(n - 1);
}
)");
  // Terminates for n >= 0; loops for n < 0: conditional for both.
  EXPECT_EQ(R.find("even")->Summary.verdict(),
            TntSummary::Verdict::Conditional);
  EXPECT_EQ(R.find("odd")->Summary.verdict(),
            TntSummary::Verdict::Conditional);
}

TEST(InferBasic, CallerInheritsLoop) {
  AnalysisResult R = analyzeOk(R"(
void lp(int x) { lp(x); }
void main_m() { lp(3); }
)");
  EXPECT_EQ(R.find("lp")->Summary.verdict(),
            TntSummary::Verdict::NonTerminating);
  EXPECT_EQ(R.outcome("main_m"), Outcome::No);
}

TEST(InferBasic, ConditionalCallerOfLoop) {
  AnalysisResult R = analyzeOk(R"(
void lp(int x) { lp(x); }
void m(int c)
{
  if (c > 0) lp(c);
  else return;
}
)");
  const MethodResult *M = R.find("m");
  Formula CPos = Formula::cmp(ex("c"), CmpKind::Gt, LinExpr(0));
  Formula CNeg = Formula::cmp(ex("c"), CmpKind::Le, LinExpr(0));
  expectCase(M->Summary, CPos, TemporalSpec::Kind::Loop);
  expectCase(M->Summary, CNeg, TemporalSpec::Kind::Term);
}

//===----------------------------------------------------------------------===//
// Nested recursion (Fig. 3)
//===----------------------------------------------------------------------===//

TEST(InferNested, AckermannWithSpec) {
  AnalysisResult R = analyzeOk(R"(
int Ack(int m, int n)
  requires true ensures res >= n + 1;
{
  if (m == 0) return n + 1;
  else if (n == 0) return Ack(m - 1, 1);
  else return Ack(m - 1, Ack(m, n - 1));
}
)");
  const MethodResult *M = R.find("Ack");
  ASSERT_NE(M, nullptr);
  EXPECT_FALSE(M->SafetyFailed);
  // With the res >= n+1 bound, the paper proves Term[m,n] for
  // m>0 && n>=0, Term for m=0, Loop for m<0 || n<0.
  Formula Base = Formula::cmp(ex("m"), CmpKind::Eq, LinExpr(0));
  Formula NegM = Formula::cmp(ex("m"), CmpKind::Lt, LinExpr(0));
  Formula Rec = Formula::conj2(Formula::cmp(ex("m"), CmpKind::Gt, LinExpr(0)),
                               Formula::cmp(ex("n"), CmpKind::Ge, LinExpr(0)));
  expectCase(M->Summary, Base, TemporalSpec::Kind::Term);
  expectCase(M->Summary, NegM, TemporalSpec::Kind::Loop);
  expectCase(M->Summary, Rec, TemporalSpec::Kind::Term);
  EXPECT_EQ(M->Summary.verdict(), TntSummary::Verdict::Conditional);
}

TEST(InferNested, AckermannWithoutSpecLeavesMayLoop) {
  AnalysisResult R = analyzeOk(R"(
int Ack(int m, int n)
{
  if (m == 0) return n + 1;
  else if (n == 0) return Ack(m - 1, 1);
  else return Ack(m - 1, Ack(m, n - 1));
}
)");
  const MethodResult *M = R.find("Ack");
  // Without the output bound the inner call's second argument is
  // unconstrained: the paper reports MayLoop for m>0 && n>=0.
  EXPECT_EQ(M->Summary.verdict(), TntSummary::Verdict::Unknown);
  expectCase(M->Summary, Formula::cmp(ex("m"), CmpKind::Eq, LinExpr(0)),
             TemporalSpec::Kind::Term);
}

TEST(InferNested, McCarthy91WithSpec) {
  AnalysisResult R = analyzeOk(R"(
int Mc91(int n)
  requires true ensures (n <= 100 & res = 91) or (n > 100 & res = n - 10);
{
  if (n > 100) return n - 10;
  else return Mc91(Mc91(n + 11));
}
)");
  const MethodResult *M = R.find("Mc91");
  ASSERT_NE(M, nullptr);
  EXPECT_FALSE(M->SafetyFailed) << R.Diagnostics;
  // With the specification the paper proves termination for all inputs.
  EXPECT_EQ(M->Summary.verdict(), TntSummary::Verdict::Terminating)
      << M->Summary.str();
}

//===----------------------------------------------------------------------===//
// Heap examples (Fig. 4)
//===----------------------------------------------------------------------===//

TEST(InferHeap, AppendTerminatesOnLseg) {
  AnalysisResult R = analyzeOk(R"(
data node { node next; }
pred lseg(root, q, n) == root = q & n = 0
  or root |-> node(p) * lseg(p, q, n - 1);
pred cll(root, n) == root |-> node(p) * lseg(p, root, n - 1);

void append(node x, node y)
  requires lseg(x, null, n) & x != null ensures lseg(x, y, n);
  requires cll(x, n) ensures true;
{
  if (x.next == null) x.next = y;
  else append(x.next, y);
}
)");
  const MethodResult *Lseg = R.find("append", 0);
  ASSERT_NE(Lseg, nullptr);
  EXPECT_FALSE(Lseg->SafetyFailed) << R.Diagnostics;
  EXPECT_EQ(Lseg->Summary.verdict(), TntSummary::Verdict::Terminating)
      << Lseg->Summary.str();

  const MethodResult *Cll = R.find("append", 1);
  ASSERT_NE(Cll, nullptr);
  EXPECT_FALSE(Cll->SafetyFailed) << R.Diagnostics;
  EXPECT_EQ(Cll->Summary.verdict(), TntSummary::Verdict::NonTerminating)
      << Cll->Summary.str();
}

//===----------------------------------------------------------------------===//
// Nondeterminism (Section 8's handling)
//===----------------------------------------------------------------------===//

TEST(InferNondet, AngelicLoopBranch) {
  AnalysisResult R = analyzeOk(R"(
void m(int x)
{
  if (nondet_bool()) return;
  else m(x);
}
)");
  // One branch loops: marked non-terminating under the paper's rule.
  EXPECT_EQ(R.find("m")->Summary.verdict(),
            TntSummary::Verdict::NonTerminating);
}

TEST(InferNondet, NondetArgStaysUnknown) {
  AnalysisResult R = analyzeOk(R"(
void m(int x)
{
  if (x <= 0) return;
  else m(nondet_int());
}
)");
  // The next value is unconstrained: neither Term nor Loop for x > 0.
  EXPECT_EQ(R.find("m")->Summary.verdict(), TntSummary::Verdict::Unknown);
}

//===----------------------------------------------------------------------===//
// Baseline knobs
//===----------------------------------------------------------------------===//

TEST(InferConfig, TermOnlyNeverAnswersLoop) {
  AnalyzerConfig Cfg;
  Cfg.Solve.EnableNonTermProof = false;
  AnalysisResult R = analyzeOk("void lp(int x) { lp(x); }", Cfg);
  EXPECT_EQ(R.find("lp")->Summary.verdict(), TntSummary::Verdict::Unknown);
}

TEST(InferConfig, NoAbductionLosesFooPrecision) {
  AnalyzerConfig Cfg;
  Cfg.Solve.EnableAbduction = false;
  AnalysisResult R = analyzeOk(R"(
void foo(int x, int y)
{
  if (x < 0) return;
  else foo(x + y, y);
}
)",
                               Cfg);
  // Without case-split abduction the x>=0 region cannot be separated
  // into y<0 / y>=0: it stays MayLoop.
  EXPECT_EQ(R.find("foo")->Summary.verdict(), TntSummary::Verdict::Unknown);
}

TEST(InferConfig, FuelBudgetClassifiesTimeout) {
  AnalyzerConfig Cfg;
  Cfg.FuelBudget = 1; // Absurdly small.
  AnalysisResult R = analyzeOk(R"(
void foo(int x, int y)
{
  if (x < 0) return;
  else foo(x + y, y);
}
)",
                               Cfg);
  EXPECT_GT(R.FuelUsed, 1u);
  EXPECT_EQ(R.outcome("foo"), Outcome::Timeout);
}

TEST(InferConfig, MonolithicModeStillSolvesSimple) {
  AnalyzerConfig Cfg;
  Cfg.Modular = false;
  AnalysisResult R = analyzeOk(R"(
void cd(int n)
{
  if (n <= 0) return;
  else cd(n - 1);
}
)",
                               Cfg);
  EXPECT_EQ(R.find("cd")->Summary.verdict(),
            TntSummary::Verdict::Terminating);
}
