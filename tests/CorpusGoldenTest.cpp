//===- tests/CorpusGoldenTest.cpp - ground-truth regression -----*- C++ -*-===//
//
// The Fig. 10/11 regression fence: the FULL benchmark corpus runs
// through BatchAnalyzer and the per-category Yes/No/Unknown/Timeout
// counts are pinned EXACTLY, so a solver or inference change that
// silently regresses (or improves) the evaluation tables fails here
// and has to update the goldens consciously. Soundness is absolute:
// zero answers may contradict ground truth, in any category, ever.
//
// The counts are a function of the corpus and the analysis code alone:
// batch mode is byte-deterministic for any thread count (see
// docs/ARCHITECTURE.md "Batch engine"), uses no wall-clock deadline,
// and the default per-group fuel bound is deterministic. If a
// legitimate change moves a count, re-run and re-pin:
//   hiptnt --batch @corpus --threads 2 --stats
//
//===----------------------------------------------------------------------===//

#include "api/BatchAnalyzer.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace tnt;

namespace {

struct Golden {
  const char *Category;
  unsigned Yes, No, Unknown, Timeout;
};

// Pinned against the seed of this PR (engine at PR 3). The shape
// mirrors the paper's Fig. 10: strong Yes columns, real No columns in
// every family but numeric, no timeouts.
const Golden Fig10Golden[] = {
    {"crafted", 16, 15, 8, 0},
    {"crafted-lit", 123, 23, 4, 0},
    {"numeric", 66, 0, 2, 0},
    {"memory-alloca", 67, 12, 2, 0},
};

// Fig. 11 aggregate: the 221 loop-based integer programs (a subset of
// the first three categories), counted from the same batch run.
const Golden Fig11Golden = {"loop-based", 171, 38, 12, 0};

} // namespace

TEST(CorpusGolden, FullCorpusSoundAndCountsPinned) {
  const std::vector<BenchProgram> &All = corpus();
  std::vector<BatchItem> Items = corpusBatchItems();
  ASSERT_EQ(Items.size(), All.size());

  BatchOptions Opt;
  Opt.Threads = 2; // Any thread count gives identical results.
  BatchAnalyzer BA(Opt);
  BatchResult R = BA.run(Items);
  ASSERT_EQ(R.Programs.size(), All.size());

  // 1. Soundness: no answer may contradict ground truth. This is the
  // paper's re-verification claim and the repo's core property.
  unsigned Unsound = 0;
  for (size_t I = 0; I < All.size(); ++I) {
    EXPECT_TRUE(soundAnswer(All[I], R.Programs[I].Verdict))
        << All[I].Name << " answered "
        << outcomeStr(R.Programs[I].Verdict);
    if (!soundAnswer(All[I], R.Programs[I].Verdict))
      ++Unsound;
  }
  ASSERT_EQ(Unsound, 0u);

  // 2. Every program must have analyzed (the corpus parses by
  // construction; a front-end regression would silently turn programs
  // into Unknowns without this).
  for (const BatchProgramResult &P : R.Programs)
    EXPECT_TRUE(P.Result.Ok) << P.Name << "\n" << P.Result.Diagnostics;

  // 3. Exact per-category counts (Fig. 10).
  auto Cats = R.perCategory();
  std::map<std::string, CategoryCounts> ByName(Cats.begin(), Cats.end());
  for (const Golden &G : Fig10Golden) {
    ASSERT_TRUE(ByName.count(G.Category)) << G.Category;
    const CategoryCounts &C = ByName[G.Category];
    EXPECT_EQ(C.Yes, G.Yes) << G.Category;
    EXPECT_EQ(C.No, G.No) << G.Category;
    EXPECT_EQ(C.Unknown, G.Unknown) << G.Category;
    EXPECT_EQ(C.Timeout, G.Timeout) << G.Category;
  }

  // 4. Exact Fig. 11 aggregate over the loop-based subset of the SAME
  // run (results are per-program deterministic, so reusing the batch
  // is equivalent to re-running @fig11).
  std::set<std::string> LoopNames;
  for (const BenchProgram *P : loopBasedPrograms())
    LoopNames.insert(P->Name);
  ASSERT_EQ(LoopNames.size(), 221u);
  CategoryCounts Loop;
  for (const BatchProgramResult &P : R.Programs) {
    if (!LoopNames.count(P.Name))
      continue;
    switch (P.Verdict) {
    case Outcome::Yes:
      ++Loop.Yes;
      break;
    case Outcome::No:
      ++Loop.No;
      break;
    case Outcome::Unknown:
      ++Loop.Unknown;
      break;
    case Outcome::Timeout:
      ++Loop.Timeout;
      break;
    }
  }
  EXPECT_EQ(Loop.Yes, Fig11Golden.Yes);
  EXPECT_EQ(Loop.No, Fig11Golden.No);
  EXPECT_EQ(Loop.Unknown, Fig11Golden.Unknown);
  EXPECT_EQ(Loop.Timeout, Fig11Golden.Timeout);

  // 5. The shared tier genuinely fired across the corpus.
  EXPECT_GT(R.Global.SatHits, 0u);
  EXPECT_GT(R.Global.SatEntries, 0u);
}
