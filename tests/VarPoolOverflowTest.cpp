//===- tests/VarPoolOverflowTest.cpp - block-overflow fallback --*- C++ -*-===//
//
// Pins the VarPool block-overflow contract the ROADMAP documents: a
// scope whose block number is past the pool's block limit falls back
// to the global id region. The fallback is SOUND — ids are unique and
// analyses still answer correctly — but it forfeits the byte-
// determinism guarantee: global-region ids are handed out in
// first-allocation order from one shared counter, so with concurrent
// overflow scopes the id VALUES (and with them the iteration order of
// VarId-keyed containers) depend on thread interleaving. These tests
// lower the limit (test hook) to reach the fallback without minting
// ~16k real blocks, then pin the mechanism, the soundness, and the
// serial-determinism carve-out.
//
//===----------------------------------------------------------------------===//

#include "api/BatchAnalyzer.h"
#include "arith/Var.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

/// RAII: lower the pool's block limit for one test, always restore.
struct BlockLimitGuard {
  explicit BlockLimitGuard(uint32_t Limit) {
    VarPool::get().setBlockLimitForTest(Limit);
  }
  ~BlockLimitGuard() { VarPool::get().setBlockLimitForTest(0); }
};

const char *CountdownSrc = R"(
int step(int k)
{
  if (k <= 0) return 0;
  else return step(k - 2);
}
int main(int n)
{
  return step(n);
}
)";

const char *SpinSrc = R"(
int spin(int b)
{
  if (b < 0) return 0;
  else return spin(b + 1);
}
int main(int n)
{
  return spin(1);
}
)";

BatchItem item(const char *Name, const char *Src) {
  BatchItem It;
  It.Name = Name;
  It.Category = "ovf";
  It.Source = Src;
  return It;
}

} // namespace

TEST(VarPoolOverflow, ScopePastLimitAllocatesFromGlobalRegion) {
  BlockLimitGuard G(4);
  EXPECT_EQ(VarPool::get().blockLimit(), 4u);
  uint64_t Before = VarPool::get().scopedFallbacks();

  {
    // Within the limit: block-region ids.
    VarPool::Scope S(2);
    VarId A = freshVar("ovf_in");
    EXPECT_GE(A, VarPool::blockStart(2));
    EXPECT_LT(A, VarPool::blockStart(3));
  }
  EXPECT_EQ(VarPool::get().scopedFallbacks(), Before);

  {
    // Past the limit: the global region (below BlockBase), counted as
    // a fallback.
    VarPool::Scope S(9);
    VarId B = freshVar("ovf_out");
    EXPECT_LT(B, VarPool::BlockBase);
  }
  EXPECT_GT(VarPool::get().scopedFallbacks(), Before);

  // Soundness of the fallback spelling contract: re-entering the same
  // overflow scope re-derives the same spellings, which re-intern to
  // their original ids — repeatability within one process holds even
  // for the fallback (the nondeterminism is about cross-thread
  // first-allocation order, pinned below at the batch level).
  VarId First, Second;
  {
    VarPool::Scope S(9);
    First = freshVar("ovf_rep");
  }
  {
    VarPool::Scope S(9);
    Second = freshVar("ovf_rep");
  }
  EXPECT_EQ(First, Second);
}

TEST(VarPoolOverflow, OverflowBatchStaysSoundAndSeriallyDeterministic) {
  // 8 programs, 1 group each: root blocks 1..8, group blocks 9..16 —
  // with the limit at 4, every group scope (and half the front ends)
  // falls back. The contract to pin: verdicts are UNAFFECTED (sound),
  // fallbacks demonstrably fired, and serial re-runs stay repeatable;
  // what is forfeited — and therefore deliberately NOT asserted here —
  // is byte-identity of rendered output across thread counts.
  std::vector<BatchItem> Items;
  for (int I = 0; I < 4; ++I) {
    Items.push_back(item("t", CountdownSrc));
    Items.push_back(item("l", SpinSrc));
  }

  // The overflow run goes FIRST: these sources' spellings must not be
  // in the pool yet, or every allocation would be an Index hit and the
  // fallback path would never execute.
  BatchOptions Opt;
  Opt.Threads = 1;
  BatchResult First;
  {
    BlockLimitGuard G(4);
    uint64_t Before = VarPool::get().scopedFallbacks();
    BatchAnalyzer BA(Opt);
    First = BA.run(Items);
    EXPECT_GT(VarPool::get().scopedFallbacks(), Before)
        << "the lowered limit never triggered the fallback path";

    // Serial repeatability: a second identical serial run re-derives
    // the same spellings and reuses their ids, so even rendered output
    // is stable run-over-run in one process.
    BatchAnalyzer BA2(Opt);
    BatchResult Second = BA2.run(Items);
    EXPECT_EQ(First.renderOutcomes(), Second.renderOutcomes());
  }

  // Reference verdicts at the normal limit (id reuse makes this run
  // see the fallback-allocated ids — irrelevant to verdicts, which is
  // exactly the soundness claim).
  BatchAnalyzer RefBA(Opt);
  BatchResult Reference = RefBA.run(Items);
  ASSERT_EQ(First.Programs.size(), Reference.Programs.size());
  for (size_t I = 0; I < Reference.Programs.size(); ++I)
    EXPECT_EQ(First.Programs[I].Verdict, Reference.Programs[I].Verdict)
        << Items[I].Name << " changed verdict under block overflow";
  EXPECT_EQ(outcomeStr(First.Programs[0].Verdict), std::string("Y"));
  EXPECT_EQ(outcomeStr(First.Programs[1].Verdict), std::string("N"));
}
