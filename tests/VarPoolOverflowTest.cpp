//===- tests/VarPoolOverflowTest.cpp - block-overflow fallback --*- C++ -*-===//
//
// Pins the VarPool block-overflow contract: a scope whose block number
// is past the pool's block limit falls back to a global id region.
// In the SHARED pool (bare Scope, no session) that fallback is sound
// but only serially repeatable: global-region ids come from one shared
// counter in first-allocation order. The batch engine no longer runs
// there — every batch program gets its own VarPool::Session lease
// (root block 0, group G on block G + 1), and a SESSION's fallback
// region is private and positional, so overflow ids are a pure
// function of the program alone. The old carve-out ("an overflow tail
// loses byte-determinism across thread counts") is RETIRED: the batch
// test below asserts byte-identical rendered outcomes across 1/2/4
// threads WHILE overflowing. The SessionLease tests pin the mechanism
// underneath: a session is a virgin pool view whose ids (block and
// fallback alike) are positional, sessions still feed the pool-wide
// fallback counter (the store-insert guard and soak fence), and the
// shared pool never grows.
//
//===----------------------------------------------------------------------===//

#include "api/BatchAnalyzer.h"
#include "arith/Var.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

/// RAII: lower the pool's block limit for one test, always restore.
struct BlockLimitGuard {
  explicit BlockLimitGuard(uint32_t Limit) {
    VarPool::get().setBlockLimitForTest(Limit);
  }
  ~BlockLimitGuard() { VarPool::get().setBlockLimitForTest(0); }
};

const char *CountdownSrc = R"(
int step(int k)
{
  if (k <= 0) return 0;
  else return step(k - 2);
}
int main(int n)
{
  return step(n);
}
)";

const char *SpinSrc = R"(
int spin(int b)
{
  if (b < 0) return 0;
  else return spin(b + 1);
}
int main(int n)
{
  return spin(1);
}
)";

BatchItem item(const char *Name, const char *Src) {
  BatchItem It;
  It.Name = Name;
  It.Category = "ovf";
  It.Source = Src;
  return It;
}

} // namespace

TEST(VarPoolOverflow, ScopePastLimitAllocatesFromGlobalRegion) {
  BlockLimitGuard G(4);
  EXPECT_EQ(VarPool::get().blockLimit(), 4u);
  uint64_t Before = VarPool::get().scopedFallbacks();

  {
    // Within the limit: block-region ids.
    VarPool::Scope S(2);
    VarId A = freshVar("ovf_in");
    EXPECT_GE(A, VarPool::blockStart(2));
    EXPECT_LT(A, VarPool::blockStart(3));
  }
  EXPECT_EQ(VarPool::get().scopedFallbacks(), Before);

  {
    // Past the limit: the global region (below BlockBase), counted as
    // a fallback.
    VarPool::Scope S(9);
    VarId B = freshVar("ovf_out");
    EXPECT_LT(B, VarPool::BlockBase);
  }
  EXPECT_GT(VarPool::get().scopedFallbacks(), Before);

  // Soundness of the fallback spelling contract: re-entering the same
  // overflow scope re-derives the same spellings, which re-intern to
  // their original ids — repeatability within one process holds even
  // for the fallback (the nondeterminism is about cross-thread
  // first-allocation order, pinned below at the batch level).
  VarId First, Second;
  {
    VarPool::Scope S(9);
    First = freshVar("ovf_rep");
  }
  {
    VarPool::Scope S(9);
    Second = freshVar("ovf_rep");
  }
  EXPECT_EQ(First, Second);
}

TEST(VarPoolOverflow, OverflowBatchStaysByteDeterministic) {
  // Every batch program runs in its own session on root block 0 with
  // its single group on block 1 — so a limit of 1 makes EVERY group
  // scope overflow into its session's private fallback region. The
  // retired-carve-out contract to pin: under overflow, rendered batch
  // output is byte-identical across thread counts and repeat runs
  // (session fallback ids are positional), fallbacks demonstrably
  // fired and are still counted pool-wide, verdicts are unaffected,
  // and the shared pool does not grow.
  std::vector<BatchItem> Items;
  for (int I = 0; I < 4; ++I) {
    Items.push_back(item("t", CountdownSrc));
    Items.push_back(item("l", SpinSrc));
  }

  BatchResult First;
  {
    BlockLimitGuard G(1);
    const size_t PoolBefore = VarPool::get().size();
    uint64_t Before = VarPool::get().scopedFallbacks();
    BatchOptions Opt;
    Opt.Threads = 1;
    BatchAnalyzer BA(Opt);
    First = BA.run(Items);
    EXPECT_GT(VarPool::get().scopedFallbacks(), Before)
        << "the lowered limit never triggered the fallback path";
    EXPECT_EQ(VarPool::get().size(), PoolBefore)
        << "session allocations leaked into the shared pool";

    // The retired carve-out: byte-identity across thread counts holds
    // even while every group overflows.
    for (unsigned Threads : {2u, 4u}) {
      BatchOptions POpt;
      POpt.Threads = Threads;
      BatchAnalyzer PBA(POpt);
      BatchResult RN = PBA.run(Items);
      EXPECT_EQ(First.renderOutcomes(), RN.renderOutcomes())
          << "overflow batch diverged at " << Threads << " threads";
    }
  }

  // Reference verdicts at the normal limit: the fallback never changes
  // an answer (soundness).
  BatchOptions Opt;
  Opt.Threads = 1;
  BatchAnalyzer RefBA(Opt);
  BatchResult Reference = RefBA.run(Items);
  ASSERT_EQ(First.Programs.size(), Reference.Programs.size());
  for (size_t I = 0; I < Reference.Programs.size(); ++I)
    EXPECT_EQ(First.Programs[I].Verdict, Reference.Programs[I].Verdict)
        << Items[I].Name << " changed verdict under block overflow";
  EXPECT_EQ(First.renderOutcomes(), Reference.renderOutcomes())
      << "session fallback ids changed the rendered output";
  EXPECT_EQ(outcomeStr(First.Programs[0].Verdict), std::string("Y"));
  EXPECT_EQ(outcomeStr(First.Programs[1].Verdict), std::string("N"));
}

TEST(VarPoolOverflow, SessionLeaseRecyclesIdsAndSpellings) {
  // The lease/recycle contract: a Session is a virgin view — interns,
  // block allocations, and fresh counters all start from zero — so two
  // sequential sessions performing the same allocation sequence mint
  // IDENTICAL (id, spelling) pairs. That positional property is what
  // makes concurrent server responses byte-identical to fresh-process
  // runs: ids are a function of the request, not of pool history.
  const size_t PoolBefore = VarPool::get().size();
  using Alloc = std::pair<VarId, std::string>;
  auto runLease = [](uint64_t &FallbacksOut) {
    std::vector<Alloc> Out;
    VarPool::Session Lease;
    VarPool::SessionScope Active(Lease);
    VarPool &P = VarPool::get();
    VarId A = P.intern("lease_x");
    Out.emplace_back(A, P.name(A));
    {
      VarPool::Scope S(3);
      VarId B = freshVar("lease_f");
      VarId C = freshVar("lease_f");
      Out.emplace_back(B, P.name(B));
      Out.emplace_back(C, P.name(C));
    }
    VarId D = freshVar("lease_g"); // No scope: session-global region.
    Out.emplace_back(D, P.name(D));
    FallbacksOut = Lease.fallbacks();
    return Out;
  };
  uint64_t Fb1 = 0, Fb2 = 0;
  std::vector<Alloc> First = runLease(Fb1);
  std::vector<Alloc> Second = runLease(Fb2);
  EXPECT_EQ(First, Second) << "session ids/spellings are not positional";

  // Positional anchors: the first block-3 allocation IS the block
  // start; the session-global region starts at id 0.
  EXPECT_EQ(First[1].first, VarPool::blockStart(3));
  EXPECT_EQ(First[2].first, VarPool::blockStart(3) + 1);
  EXPECT_LT(First[3].first, VarPool::BlockBase);
  EXPECT_EQ(Fb1, 0u); // Unscoped session allocs are not fallbacks.
  EXPECT_EQ(Fb2, 0u);

  // The lease died with its scope: nothing leaked into the shared
  // tables, and the spellings it used are NOT resolvable there.
  EXPECT_EQ(VarPool::get().size(), PoolBefore);
}

TEST(VarPoolOverflow, SessionOversizedBatchFallsBackDeterministically) {
  // One oversized batch (block past the limit) inside a session: the
  // fallback still fires — and is still counted, per-session and
  // pool-wide — but lands in the SESSION's global region, so even the
  // fallback ids recycle: a rerun of the same request reproduces them
  // exactly. This is the overflow story after the carve-out's
  // retirement: sound, counted, and (per session) deterministic.
  BlockLimitGuard G(4);
  const size_t PoolBefore = VarPool::get().size();
  const uint64_t PoolFallbacksBefore = VarPool::get().scopedFallbacks();
  auto runLease = [](uint64_t &FallbacksOut) {
    std::vector<std::pair<VarId, std::string>> Out;
    VarPool::Session Lease;
    VarPool::SessionScope Active(Lease);
    VarPool::Scope S(9); // Past the lowered limit: every alloc falls back.
    VarId A = freshVar("lease_ovf");
    VarId B = freshVar("lease_ovf");
    Out.emplace_back(A, VarPool::get().name(A));
    Out.emplace_back(B, VarPool::get().name(B));
    FallbacksOut = Lease.fallbacks();
    return Out;
  };
  uint64_t Fb1 = 0, Fb2 = 0;
  auto First = runLease(Fb1);
  auto Second = runLease(Fb2);
  EXPECT_EQ(First, Second)
      << "session fallback ids are not recycled across leases";
  EXPECT_LT(First[0].first, VarPool::BlockBase);
  EXPECT_EQ(Fb1, 2u);
  EXPECT_EQ(Fb2, 2u);
  // The pool-wide counter still observes session fallbacks (it is the
  // store-insert guard and the soak fence), but the shared tables do
  // not grow.
  EXPECT_EQ(VarPool::get().scopedFallbacks(), PoolFallbacksBefore + 4);
  EXPECT_EQ(VarPool::get().size(), PoolBefore);
}
