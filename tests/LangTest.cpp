//===- tests/LangTest.cpp - frontend: lexer/parser/resolve/lower -*- C++-*-===//

#include "lang/CallGraph.h"
#include "lang/Parser.h"
#include "lang/Resolve.h"
#include "lang/Transforms.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

Program parseOk(const std::string &Src) {
  DiagnosticEngine Diags;
  std::optional<Program> P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return P ? std::move(*P) : Program{};
}

const char *FooSrc = R"(
void foo(int x, int y)
{
  if (x < 0) return;
  else foo(x + y, y);
}
)";

const char *AckSrc = R"(
int Ack(int m, int n)
  requires true ensures res >= n + 1;
{
  if (m == 0) return n + 1;
  else if (n == 0) return Ack(m - 1, 1);
  else return Ack(m - 1, Ack(m, n - 1));
}
)";

const char *AppendSrc = R"(
data node { node next; }
pred lseg(root, q, n) == root = q & n = 0
  or root |-> node(p) * lseg(p, q, n - 1);
pred cll(root, n) == root |-> node(p) * lseg(p, root, n - 1);

void append(node x, node y)
  requires lseg(x, null, n) & x != null ensures lseg(x, y, n);
  requires cll(x, n) ensures true;
{
  if (x.next == null) x.next = y;
  else append(x.next, y);
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, BasicTokens) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts = tokenize("x' |-> <= == != && ||", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Ts.size(), 8u); // 7 tokens + EOF
  EXPECT_EQ(Ts[0].K, Tok::Ident);
  EXPECT_EQ(Ts[0].Text, "x'");
  EXPECT_EQ(Ts[1].K, Tok::PointsTo);
  EXPECT_EQ(Ts[2].K, Tok::Le);
  EXPECT_EQ(Ts[3].K, Tok::EqEq);
  EXPECT_EQ(Ts[4].K, Tok::NotEq);
  EXPECT_EQ(Ts[5].K, Tok::AmpAmp);
  EXPECT_EQ(Ts[6].K, Tok::PipePipe);
}

TEST(Lexer, CommentsAndLocations) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts = tokenize("// line\n/* block\n */ x", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Ts.size(), 2u);
  EXPECT_EQ(Ts[0].Text, "x");
  EXPECT_EQ(Ts[0].Loc.Line, 3u);
}

TEST(Lexer, Keywords) {
  DiagnosticEngine Diags;
  std::vector<Token> Ts =
      tokenize("requires ensures Term Loop MayLoop emp or", Diags);
  EXPECT_EQ(Ts[0].K, Tok::KwRequires);
  EXPECT_EQ(Ts[1].K, Tok::KwEnsures);
  EXPECT_EQ(Ts[2].K, Tok::KwTerm);
  EXPECT_EQ(Ts[3].K, Tok::KwLoop);
  EXPECT_EQ(Ts[4].K, Tok::KwMayLoop);
  EXPECT_EQ(Ts[5].K, Tok::KwEmp);
  EXPECT_EQ(Ts[6].K, Tok::KwOr);
}

TEST(Lexer, ReportsStrayCharacters) {
  DiagnosticEngine Diags;
  tokenize("x @ y", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, FooProgram) {
  Program P = parseOk(FooSrc);
  ASSERT_EQ(P.Methods.size(), 1u);
  const MethodDecl &M = P.Methods[0];
  EXPECT_EQ(M.Name, "foo");
  EXPECT_EQ(M.Params.size(), 2u);
  EXPECT_TRUE(M.Specs.empty()); // unknowns added by the analysis
  ASSERT_TRUE(M.Body);
}

TEST(Parser, AckSpec) {
  Program P = parseOk(AckSrc);
  ASSERT_EQ(P.Methods.size(), 1u);
  const MethodDecl &M = P.Methods[0];
  ASSERT_EQ(M.Specs.size(), 1u);
  EXPECT_TRUE(M.Specs[0].PrePure.isTop());
  // res >= n + 1 mentions res.
  std::set<VarId> Free = M.Specs[0].PostPure.freeVars();
  EXPECT_TRUE(Free.count(mkVar("res")));
  EXPECT_TRUE(Free.count(mkVar("n")));
}

TEST(Parser, AppendHeapSpecs) {
  Program P = parseOk(AppendSrc);
  ASSERT_EQ(P.Datas.size(), 1u);
  ASSERT_EQ(P.Preds.size(), 2u);
  const PredDecl &Lseg = P.Preds[0];
  EXPECT_EQ(Lseg.Name, "lseg");
  ASSERT_EQ(Lseg.Branches.size(), 2u);
  EXPECT_TRUE(Lseg.Branches[0].Heap.isEmp());
  ASSERT_EQ(Lseg.Branches[1].Heap.Atoms.size(), 2u);
  EXPECT_EQ(Lseg.Branches[1].Heap.Atoms[0].K, HeapAtom::Kind::PointsTo);
  EXPECT_EQ(Lseg.Branches[1].Heap.Atoms[1].K, HeapAtom::Kind::Pred);

  const MethodDecl &M = P.Methods[0];
  ASSERT_EQ(M.Specs.size(), 2u);
  EXPECT_EQ(M.Specs[0].PreHeap.Atoms.size(), 1u);
  EXPECT_EQ(M.Specs[0].PostHeap.Atoms.size(), 1u);
  EXPECT_EQ(M.Specs[1].PreHeap.Atoms[0].Name, "cll");
}

TEST(Parser, TemporalSpecs) {
  Program P = parseOk(R"(
void lib(int x)
  requires x >= 0 & Term[x] ensures true;
void libloop()
  requires Loop ensures false;
void libmay()
  requires MayLoop ensures true;
)");
  ASSERT_EQ(P.Methods.size(), 3u);
  EXPECT_EQ(P.Methods[0].Specs[0].Temporal.K, TemporalSpec::Kind::Term);
  ASSERT_EQ(P.Methods[0].Specs[0].Temporal.Measure.size(), 1u);
  EXPECT_EQ(P.Methods[1].Specs[0].Temporal.K, TemporalSpec::Kind::Loop);
  EXPECT_TRUE(P.Methods[1].Specs[0].PostPure.isBottom());
  EXPECT_EQ(P.Methods[2].Specs[0].Temporal.K, TemporalSpec::Kind::MayLoop);
}

TEST(Parser, WhileAndNondet) {
  Program P = parseOk(R"(
void m(int x)
{
  while (x > 0) { x = x - 1; }
  if (nondet_bool()) { x = nondet_int(); }
}
)");
  ASSERT_EQ(P.Methods.size(), 1u);
  const Stmt &Body = *P.Methods[0].Body;
  ASSERT_GE(Body.Stmts.size(), 2u);
  EXPECT_EQ(Body.Stmts[0]->K, Stmt::Kind::While);
  EXPECT_EQ(Body.Stmts[1]->K, Stmt::Kind::If);
  EXPECT_EQ(Body.Stmts[1]->E->K, Expr::Kind::NondetBool);
}

TEST(Parser, SyntaxErrorReported) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseProgram("void m( { }", Diags).has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, SpecDisjunctionParens) {
  Program P = parseOk(R"(
void m(int n)
  requires (n < 100 or n > 200) & true ensures true;
{ return; }
)");
  const Formula &Pre = P.Methods[0].Specs[0].PrePure;
  EXPECT_TRUE(Pre.eval({{mkVar("n"), 50}}));
  EXPECT_FALSE(Pre.eval({{mkVar("n"), 150}}));
  EXPECT_TRUE(Pre.eval({{mkVar("n"), 250}}));
}

TEST(Parser, MultiplicationVsSepConj) {
  Program P = parseOk(R"(
data node { node next; }
pred two(root, n) == root |-> node(p) * lseg2(p, 2 * n);
pred lseg2(root, n) == root = 0 & n = 0;
void m(node x) requires two(x, m) ensures true; { return; }
)");
  // 2*n parsed as multiplication inside pred args; '*' between atoms as
  // separating conjunction.
  ASSERT_EQ(P.Preds[0].Branches.size(), 1u);
  EXPECT_EQ(P.Preds[0].Branches[0].Heap.Atoms.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Resolver
//===----------------------------------------------------------------------===//

TEST(Resolve, AcceptsGoodPrograms) {
  DiagnosticEngine Diags;
  Program P = parseOk(FooSrc);
  EXPECT_TRUE(resolveProgram(P, Diags)) << Diags.str();
  Program P2 = parseOk(AppendSrc);
  EXPECT_TRUE(resolveProgram(P2, Diags)) << Diags.str();
}

TEST(Resolve, RejectsUndeclaredVariable) {
  DiagnosticEngine Diags;
  Program P = parseOk("void m() { x = 1; }");
  EXPECT_FALSE(resolveProgram(P, Diags));
}

TEST(Resolve, RejectsUnknownCallee) {
  DiagnosticEngine Diags;
  Program P = parseOk("void m() { g(); }");
  EXPECT_FALSE(resolveProgram(P, Diags));
}

TEST(Resolve, RejectsArityMismatch) {
  DiagnosticEngine Diags;
  Program P = parseOk("void g(int x) { return; } void m() { g(); }");
  EXPECT_FALSE(resolveProgram(P, Diags));
}

TEST(Resolve, RejectsNonlinearMultiplication) {
  DiagnosticEngine Diags;
  Program P = parseOk("void m(int x, int y) { x = x * y; }");
  EXPECT_FALSE(resolveProgram(P, Diags));
}

TEST(Resolve, RejectsBadFieldAccess) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
data node { node next; }
void m(node x) { x.prev = x; }
)");
  EXPECT_FALSE(resolveProgram(P, Diags));
}

TEST(Resolve, RejectsReturnInWhile) {
  DiagnosticEngine Diags;
  Program P = parseOk("void m(int x) { while (x > 0) { return; } }");
  EXPECT_FALSE(resolveProgram(P, Diags));
}

TEST(Resolve, RejectsPrimitiveWithoutSpec) {
  DiagnosticEngine Diags;
  Program P = parseOk("void prim(int x);");
  EXPECT_FALSE(resolveProgram(P, Diags));
}

TEST(Resolve, BlockScoping) {
  DiagnosticEngine Diags;
  Program P = parseOk("void m() { { int x; x = 1; } { int x; x = 2; } }");
  EXPECT_TRUE(resolveProgram(P, Diags)) << Diags.str();
}

//===----------------------------------------------------------------------===//
// Loop lowering
//===----------------------------------------------------------------------===//

TEST(LowerLoops, SimpleCountdown) {
  DiagnosticEngine Diags;
  Program P = parseOk("void m(int x) { while (x > 0) { x = x - 1; } }");
  ASSERT_TRUE(resolveProgram(P, Diags));
  ASSERT_TRUE(lowerLoops(P, Diags)) << Diags.str();
  ASSERT_EQ(P.Methods.size(), 2u);
  const MethodDecl &LM = P.Methods[1];
  EXPECT_TRUE(LM.FromLoop);
  ASSERT_EQ(LM.Params.size(), 1u);
  EXPECT_TRUE(LM.Params[0].ByRef);
  // Post: !(x' > 0) i.e. x' <= 0.
  ASSERT_EQ(LM.Specs.size(), 1u);
  Formula Post = LM.Specs[0].PostPure;
  EXPECT_TRUE(Post.eval({{mkVar("x'"), 0}}));
  EXPECT_FALSE(Post.eval({{mkVar("x'"), 1}}));
  // The original body now calls the loop method.
  EXPECT_EQ(P.Methods[0].Body->Stmts[0]->K, Stmt::Kind::CallStmt);
  // And the loop method is self-recursive.
  CallGraph G = CallGraph::build(P);
  EXPECT_TRUE(G.isRecursive(LM.Name));
}

TEST(LowerLoops, NestedLoops) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
void m(int i, int j)
{
  while (i > 0) {
    int k;
    k = j;
    while (k > 0) { k = k - 1; }
    i = i - 1;
  }
}
)");
  ASSERT_TRUE(resolveProgram(P, Diags));
  ASSERT_TRUE(lowerLoops(P, Diags)) << Diags.str();
  // Two synthesized methods, inner lowered first.
  ASSERT_EQ(P.Methods.size(), 3u);
  EXPECT_TRUE(P.Methods[1].FromLoop);
  EXPECT_TRUE(P.Methods[2].FromLoop);
}

TEST(LowerLoops, NondetConditionGetsTruePost) {
  DiagnosticEngine Diags;
  Program P = parseOk(
      "void m(int x) { while (nondet_int() > x) { x = x + 1; } }");
  ASSERT_TRUE(resolveProgram(P, Diags));
  ASSERT_TRUE(lowerLoops(P, Diags)) << Diags.str();
  ASSERT_EQ(P.Methods.size(), 2u);
  EXPECT_TRUE(P.Methods[1].Specs[0].PostPure.isTop());
}

TEST(LowerLoops, RejectsHeapLoop) {
  DiagnosticEngine Diags;
  Program P = parseOk(R"(
data node { node next; }
void m(node x) { while (x != null) { x = x.next; } }
)");
  ASSERT_TRUE(resolveProgram(P, Diags));
  EXPECT_FALSE(lowerLoops(P, Diags));
}

//===----------------------------------------------------------------------===//
// Call graph
//===----------------------------------------------------------------------===//

TEST(CallGraph, SelfRecursion) {
  Program P = parseOk(FooSrc);
  CallGraph G = CallGraph::build(P);
  EXPECT_TRUE(G.isRecursive("foo"));
  EXPECT_TRUE(G.sameScc("foo", "foo"));
  ASSERT_EQ(G.sccs().size(), 1u);
}

TEST(CallGraph, MutualRecursionGroupedAndOrdered) {
  Program P = parseOk(R"(
void h() { return; }
void f(int x) { g(x); }
void g(int x) { f(x); h(); }
void main_m() { f(3); }
)");
  CallGraph G = CallGraph::build(P);
  EXPECT_TRUE(G.sameScc("f", "g"));
  EXPECT_FALSE(G.sameScc("f", "h"));
  EXPECT_TRUE(G.isRecursive("f"));
  EXPECT_FALSE(G.isRecursive("h"));
  EXPECT_FALSE(G.isRecursive("main_m"));
  // Bottom-up order: h before {f,g} before main_m.
  size_t HIdx = 0, FGIdx = 0, MainIdx = 0;
  for (size_t I = 0; I < G.sccs().size(); ++I) {
    for (const std::string &N : G.sccs()[I]) {
      if (N == "h")
        HIdx = I;
      if (N == "f")
        FGIdx = I;
      if (N == "main_m")
        MainIdx = I;
    }
  }
  EXPECT_LT(HIdx, FGIdx);
  EXPECT_LT(FGIdx, MainIdx);
}

TEST(CallGraph, CalleesListed) {
  Program P = parseOk(R"(
void a() { b(); c(); }
void b() { return; }
void c() { b(); }
)");
  CallGraph G = CallGraph::build(P);
  EXPECT_EQ(G.callees("a").size(), 2u);
  EXPECT_EQ(G.callees("b").size(), 0u);
  EXPECT_TRUE(G.callees("c").count("b"));
}
