//===- tests/PropertyTest.cpp - randomized invariant checks -----*- C++ -*-===//
//
// Property-based sweeps over the substrate invariants:
//  * NNF preserves semantics on random formulas;
//  * DNF clauses jointly cover exactly the formula's models;
//  * Solver::simplify preserves semantics;
//  * projection over-approximates (and is exact when flagged exact);
//  * synthesized ranking measures really decrease (checkLexDecrease);
//  * splitConditions always yields a feasible, exclusive, exhaustive set;
//  * capacity subsumption is a partial order on the known predicates.
//
//===----------------------------------------------------------------------===//

#include "infer/CaseSplit.h"
#include "solver/GlobalCache.h"
#include "solver/Model.h"
#include "solver/Solver.h"
#include "spec/Capacity.h"
#include "synth/Ranking.h"

#include <gtest/gtest.h>

#include <random>

using namespace tnt;

namespace {

/// Random formula generator over a fixed small variable set.
struct Gen {
  std::mt19937 Rng;
  std::vector<VarId> Vars;

  explicit Gen(unsigned Seed) : Rng(Seed) {
    Vars = {mkVar("pfa"), mkVar("pfb"), mkVar("pfc")};
  }

  int irand(int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  }

  LinExpr expr() {
    LinExpr E(irand(-4, 4));
    for (VarId V : Vars)
      if (irand(0, 2) == 0)
        E = E + LinExpr::var(V, irand(-3, 3));
    return E;
  }

  Formula atom() {
    CmpKind K;
    switch (irand(0, 4)) {
    case 0:
      K = CmpKind::Eq;
      break;
    case 1:
      K = CmpKind::Ne;
      break;
    case 2:
      K = CmpKind::Lt;
      break;
    case 3:
      K = CmpKind::Le;
      break;
    default:
      K = CmpKind::Ge;
      break;
    }
    return Formula::cmp(expr(), K, expr());
  }

  Formula formula(unsigned Depth) {
    if (Depth == 0)
      return atom();
    switch (irand(0, 3)) {
    case 0:
      return Formula::conj2(formula(Depth - 1), formula(Depth - 1));
    case 1:
      return Formula::disj2(formula(Depth - 1), formula(Depth - 1));
    case 2:
      return Formula::neg(formula(Depth - 1));
    default:
      return atom();
    }
  }

  /// All assignments over the generator's variables in [-B, B]^3.
  template <typename Fn> void forAllModels(int64_t B, Fn F) {
    std::map<VarId, int64_t> M;
    for (int64_t A = -B; A <= B; ++A)
      for (int64_t C = -B; C <= B; ++C)
        for (int64_t D = -B; D <= B; ++D) {
          M[Vars[0]] = A;
          M[Vars[1]] = C;
          M[Vars[2]] = D;
          F(M);
        }
  }
};

} // namespace

class FormulaProps : public ::testing::TestWithParam<unsigned> {};

TEST_P(FormulaProps, NNFPreservesSemantics) {
  Gen G(GetParam());
  Formula F = G.formula(3);
  Formula N = F.toNNF();
  G.forAllModels(2, [&](const std::map<VarId, int64_t> &M) {
    ASSERT_EQ(F.eval(M), N.eval(M)) << F.str();
  });
}

TEST_P(FormulaProps, DNFPreservesSemantics) {
  Gen G(GetParam() + 1000);
  Formula F = G.formula(2);
  std::optional<std::vector<ConstraintConj>> DNF = F.toDNF();
  ASSERT_TRUE(DNF.has_value());
  G.forAllModels(2, [&](const std::map<VarId, int64_t> &M) {
    bool Any = false;
    for (const ConstraintConj &Conj : *DNF) {
      bool All = true;
      for (const Constraint &C : Conj)
        All = All && C.eval(M);
      Any = Any || All;
    }
    ASSERT_EQ(F.eval(M), Any) << F.str();
  });
}

TEST_P(FormulaProps, SimplifyPreservesSemantics) {
  Gen G(GetParam() + 2000);
  Formula F = G.formula(2);
  Formula S = Solver::simplify(F);
  G.forAllModels(2, [&](const std::map<VarId, int64_t> &M) {
    ASSERT_EQ(F.eval(M), S.eval(M)) << F.str() << " vs " << S.str();
  });
}

TEST_P(FormulaProps, ProjectionOverApproximates) {
  Gen G(GetParam() + 3000);
  Formula F = G.formula(2);
  VarId Elim = G.Vars[2];
  Solver::ElimResult R = Solver::eliminate(F, {Elim});
  // Every model of F (restricted) satisfies the projection.
  G.forAllModels(2, [&](const std::map<VarId, int64_t> &M) {
    if (!F.eval(M))
      return;
    std::map<VarId, int64_t> Restricted = M;
    Restricted.erase(Elim);
    ASSERT_TRUE(R.F.eval(Restricted))
        << F.str() << " -> " << R.F.str();
  });
}

TEST_P(FormulaProps, InterningGivesPointerIdentity) {
  // Two generators with the same seed build the same formula twice;
  // hash-consing must hand back one node, making structEq a pointer
  // compare.
  Gen G1(GetParam() + 5000), G2(GetParam() + 5000);
  Formula F1 = G1.formula(3);
  Formula F2 = G2.formula(3);
  EXPECT_EQ(F1.node(), F2.node());
  EXPECT_TRUE(F1.structEq(F2));
}

TEST_P(FormulaProps, MemoizedDNFMatchesUnmemoized) {
  // Generator formulas are quantifier-free, so the memoized expansion
  // must agree with the plain one exactly — fill and retrieval alike.
  Gen G(GetParam() + 6000);
  Formula F = G.formula(2);
  SolverContext SC;
  auto Fill = SC.toDNF(F);
  auto Hit = SC.toDNF(F);
  auto Plain = F.toDNF();
  ASSERT_EQ(Fill.has_value(), Plain.has_value()) << F.str();
  ASSERT_EQ(Hit.has_value(), Plain.has_value()) << F.str();
  if (!Plain.has_value())
    return;
  EXPECT_EQ(*Fill, *Plain) << F.str();
  EXPECT_EQ(*Hit, *Plain) << F.str();
}

TEST_P(FormulaProps, GlobalTierAnswerEqualsFreshContext) {
  // The two-tier contract: any query answered from the shared global
  // tier equals what a fresh SolverContext computes for the same
  // hash-consed key. A filler context computes and promotes; a
  // beneficiary context answers (partly) from the tier; a fresh
  // unattached context recomputes everything. All three must agree —
  // on isSat for arbitrary (including quantified) formulas and on the
  // exact toDNF clauses for quantifier-free ones.
  Gen GFill(GetParam() + 7000), GBen(GetParam() + 7000),
      GFresh(GetParam() + 7000);
  GlobalSolverCache Tier;

  SolverContext Filler;
  Filler.attachGlobalTier(&Tier);
  std::vector<Formula> Fs;
  for (int I = 0; I < 6; ++I) {
    Formula F = GFill.formula(2);
    if (I % 2 == 0)
      F = Formula::exists({GFill.Vars[2]}, F); // Quantified half.
    Fs.push_back(F);
    (void)Filler.isSat(F);
  }
  Filler.promoteTo(Tier);
  ASSERT_GT(Tier.satSize(), 0u);

  SolverContext Beneficiary, Fresh;
  Beneficiary.attachGlobalTier(&Tier);
  for (int I = 0; I < 6; ++I) {
    Formula FB = GBen.formula(2);
    Formula FF = GFresh.formula(2);
    if (I % 2 == 0) {
      FB = Formula::exists({GBen.Vars[2]}, FB);
      FF = Formula::exists({GFresh.Vars[2]}, FF);
    }
    ASSERT_EQ(FB.node(), Fs[I].node()); // Same hash-consed key.
    EXPECT_EQ(Beneficiary.isSat(FB), Fresh.isSat(FF)) << FB.str();
    if (I % 2 != 0) {
      // Quantifier-free: the tier-served expansion must be the exact
      // clause list a fresh context computes.
      auto Shared = Beneficiary.toDNF(FB);
      auto Plain = Fresh.toDNF(FF);
      ASSERT_EQ(Shared.has_value(), Plain.has_value()) << FB.str();
      if (Plain)
        EXPECT_EQ(*Shared, *Plain) << FB.str();
    }
  }
  // The beneficiary really was fed by the tier, not by luck.
  EXPECT_GT(Beneficiary.stats().GlobalSatHits +
                Beneficiary.stats().GlobalDnfHits,
            0u);
}

TEST_P(FormulaProps, RotatedTierAnswerEqualsFreshContext) {
  // Generation-rotation extension of the two-tier contract: with a
  // tier tiny enough that promotion rotates its generations, every
  // answer still served by the tier — current or previous generation —
  // must equal what a fresh unattached context computes for the same
  // hash-consed key. Keys the rotation evicted entirely are simply
  // recomputed, which must also agree.
  Gen GFill(GetParam() + 8000), GBen(GetParam() + 8000),
      GFresh(GetParam() + 8000);
  GlobalSolverCache Tier(/*SatCapacity=*/4, /*DnfCapacity=*/2);

  SolverContext Filler;
  Filler.attachGlobalTier(&Tier);
  std::vector<Formula> Fs;
  for (int I = 0; I < 12; ++I) {
    Formula F = GFill.formula(2);
    Fs.push_back(F);
    (void)Filler.isSat(F);
  }
  Filler.promoteTo(Tier);

  SolverContext Beneficiary, Fresh;
  Beneficiary.attachGlobalTier(&Tier);
  for (int I = 0; I < 12; ++I) {
    Formula FB = GBen.formula(2);
    Formula FF = GFresh.formula(2);
    ASSERT_EQ(FB.node(), Fs[I].node()); // Same hash-consed key.
    EXPECT_EQ(Beneficiary.isSat(FB), Fresh.isSat(FF)) << FB.str();
    auto Shared = Beneficiary.toDNF(FB);
    auto Plain = Fresh.toDNF(FF);
    ASSERT_EQ(Shared.has_value(), Plain.has_value()) << FB.str();
    if (Plain)
      EXPECT_EQ(*Shared, *Plain) << FB.str();
  }
  // The beneficiary's merge re-promotes what it was served — the path
  // that keeps hot entries alive across rotations — and must leave
  // answers untouched (checked above); here just confirm it is legal
  // after rotations.
  Beneficiary.promoteTo(Tier);
}

INSTANTIATE_TEST_SUITE_P(Random, FormulaProps, ::testing::Range(0u, 25u));

//===----------------------------------------------------------------------===//
// GlobalSolverCache generation rotation (deterministic unit checks)
//===----------------------------------------------------------------------===//

TEST(GlobalCacheRotation, RotatesAtCapacityAndServesBothGenerations) {
  GlobalSolverCache Tier(/*SatCapacity=*/4, /*DnfCapacity=*/2);
  VarId X = mkVar("gcr_x");

  // 10 distinct single-constraint keys, all satisfiable.
  std::vector<ConstraintConj> Keys;
  for (int I = 0; I < 10; ++I)
    Keys.push_back({Constraint::make(LinExpr::var(X), CmpKind::Ge,
                                     LinExpr(100 + I))});

  SolverContext Filler;
  Filler.attachGlobalTier(&Tier);
  for (const ConstraintConj &K : Keys)
    EXPECT_EQ(Filler.isSatConj(K), Tri::True);
  Filler.promoteTo(Tier);

  // 10 entries offered most-recently-used first through capacity 4:
  // the freeze-at-capacity policy would have stopped at 4 entries;
  // rotation admits two generations' worth. At most one rotation per
  // merge, so the HOTTEST 8 stay resident (4 pre-rotation in prev, 4
  // post-rotation in cur) and only the coldest tail (2 entries) is
  // declined — rotating again mid-merge would have discarded the
  // hottest four instead.
  GlobalCacheStats S = Tier.stats();
  EXPECT_EQ(S.SatInserts, 8u);
  EXPECT_EQ(S.SatRotations, 1u);
  EXPECT_EQ(S.SatEntries, 4u);
  EXPECT_EQ(S.SatPrevEntries, 4u);

  // Every still-resident key answers; every answer equals a fresh
  // context's. Some hits come from the previous generation.
  SolverContext Beneficiary, Fresh;
  Beneficiary.attachGlobalTier(&Tier);
  for (const ConstraintConj &K : Keys)
    EXPECT_EQ(Beneficiary.isSatConj(K), Fresh.isSatConj(K));
  SolverStats BS = Beneficiary.stats();
  EXPECT_GT(BS.GlobalSatHits, 0u);
  EXPECT_GT(Tier.stats().SatPrevHits, 0u);

  // The beneficiary's merge re-promotes served entries into the
  // current generation: entries it was answered from prev move forward
  // (insert count grows), so hot keys survive the next rotation too.
  uint64_t InsertsBefore = Tier.stats().SatInserts;
  Beneficiary.promoteTo(Tier);
  EXPECT_GT(Tier.stats().SatInserts, InsertsBefore);
}

TEST(GlobalCacheRotation, DnfRotationKeepsPayloadsConsistent) {
  GlobalSolverCache Tier(/*SatCapacity=*/64, /*DnfCapacity=*/2);
  VarId X = mkVar("gcr_y");

  // 5 distinct non-trivial formulas (And over two atoms) so the DNF
  // memo records skeletons; capacity 2 forces a rotation on promote.
  std::vector<Formula> Fs;
  for (int I = 0; I < 5; ++I)
    Fs.push_back(Formula::conj2(
        Formula::cmp(LinExpr::var(X), CmpKind::Ge, LinExpr(I)),
        Formula::cmp(LinExpr::var(X), CmpKind::Le, LinExpr(I + 10))));

  SolverContext Filler;
  Filler.attachGlobalTier(&Tier);
  for (const Formula &F : Fs)
    (void)Filler.toDNF(F);
  Filler.promoteTo(Tier);
  EXPECT_GT(Tier.stats().DnfRotations, 0u);

  SolverContext Beneficiary, Fresh;
  Beneficiary.attachGlobalTier(&Tier);
  for (const Formula &F : Fs) {
    auto Shared = Beneficiary.toDNF(F);
    auto Plain = Fresh.toDNF(F);
    ASSERT_EQ(Shared.has_value(), Plain.has_value());
    if (Plain)
      EXPECT_EQ(*Shared, *Plain) << F.str();
  }
  EXPECT_GT(Tier.stats().DnfPrevHits + Tier.stats().DnfHits, 0u);
}

//===----------------------------------------------------------------------===//
// Ranking measures are genuine certificates
//===----------------------------------------------------------------------===//

class RankingProps : public ::testing::TestWithParam<unsigned> {};

TEST_P(RankingProps, SynthesizedMeasureDecreases) {
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<int> D(1, 3);
  VarId X = mkVar("rpx"), XP = mkVar("rpx'");
  int64_t Step = D(Rng);
  int64_t Bound = D(Rng) - 2;
  // x' = x - Step while x > Bound.
  RankEdge E;
  E.Src = E.Dst = 0;
  E.Ctx = {Constraint::make(LinExpr::var(X), CmpKind::Gt, LinExpr(Bound)),
           Constraint::make(LinExpr::var(XP), CmpKind::Eq,
                            LinExpr::var(X) - Step)};
  E.DstArgs = {LinExpr::var(XP)};
  RankResult R = synthesizeRanking({{X}}, {E});
  ASSERT_TRUE(R.Success);
  // Re-verify via the lexicographic-decrease oracle.
  std::vector<LinExpr> Caller = R.Measures[0];
  std::vector<LinExpr> Callee;
  for (const LinExpr &M : Caller)
    Callee.push_back(M.substitute(X, LinExpr::var(XP)));
  EXPECT_EQ(checkLexDecrease(conjToFormula(E.Ctx), Caller, Callee),
            Tri::True);
}

INSTANTIATE_TEST_SUITE_P(Random, RankingProps, ::testing::Range(0u, 12u));

//===----------------------------------------------------------------------===//
// splitConditions invariants (Definition 2's guard conditions)
//===----------------------------------------------------------------------===//

class SplitProps : public ::testing::TestWithParam<unsigned> {};

TEST_P(SplitProps, FeasibleExclusiveExhaustive) {
  Gen G(GetParam() + 4000);
  std::vector<Formula> Conds;
  unsigned N = 1 + GetParam() % 3;
  for (unsigned I = 0; I < N; ++I) {
    // Atoms only: realistic abduction outputs.
    Formula A = G.atom();
    if (Solver::isSat(A) == Tri::True &&
        Solver::isSat(Formula::neg(A)) == Tri::True)
      Conds.push_back(A);
  }
  if (Conds.empty())
    return;
  std::vector<Formula> Mu = splitConditions(Conds);
  ASSERT_FALSE(Mu.empty());
  for (const Formula &M : Mu)
    EXPECT_NE(Solver::isSat(M), Tri::False) << "infeasible guard";
  // Exclusivity/exhaustiveness hold up to solver incompleteness: an
  // Unknown answer is not a witnessed violation.
  for (size_t I = 0; I < Mu.size(); ++I)
    for (size_t J = I + 1; J < Mu.size(); ++J)
      EXPECT_NE(Solver::isSat(Formula::conj2(Mu[I], Mu[J])), Tri::True)
          << "overlapping guards";
  std::vector<Formula> Negs;
  for (const Formula &M : Mu)
    Negs.push_back(Formula::neg(M));
  EXPECT_NE(Solver::isSat(Formula::conj(Negs)), Tri::True)
      << "guards not exhaustive";
}

INSTANTIATE_TEST_SUITE_P(Random, SplitProps, ::testing::Range(0u, 15u));

//===----------------------------------------------------------------------===//
// Capacity lattice sanity
//===----------------------------------------------------------------------===//

TEST(CapacityProps, SubsumptionPartialOrder) {
  std::vector<Capacity> Cs = {Capacity::term(), Capacity::loop(),
                              Capacity::mayLoop()};
  for (const Capacity &A : Cs) {
    EXPECT_TRUE(capSubsumes(A, A));
    for (const Capacity &B : Cs)
      for (const Capacity &C : Cs)
        if (capSubsumes(A, B) && capSubsumes(B, C))
          EXPECT_TRUE(capSubsumes(A, C));
  }
}

TEST(CapacityProps, ConsumeAgreesWithSubsumption) {
  // theta_a =>r theta_c implies a residue exists (Section 3's weak
  // relation between =>r and |-t).
  std::vector<Capacity> Cs = {Capacity::term(), Capacity::loop(),
                              Capacity::mayLoop()};
  for (const Capacity &A : Cs)
    for (const Capacity &C : Cs)
      if (capSubsumes(A, C))
        EXPECT_TRUE(capConsume(A, C).has_value())
            << A.str() << " vs " << C.str();
}
