//===- tests/DeterminismTest.cpp - parallel scheduler determinism -*- C++ -*-===//
//
// The parallel SCC scheduler contract: for any thread count, the
// analysis result renders byte-identical to the sequential schedule —
// per-group SolverContexts, per-group unknown registries and
// deterministic fresh-variable blocks make group results a function of
// the group alone, and the join assembles them in group order.
//
//===----------------------------------------------------------------------===//

#include "api/Analyzer.h"
#include "api/BatchAnalyzer.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

/// A program with several independent SCC groups plus a shared callee,
/// so the parallel scheduler actually fans out.
const char *MultiSccSource = R"(
int dec(int k)
{
  if (k <= 0) return 0;
  else return dec(k - 1);
}
int up(int a)
{
  if (a >= 100) return a;
  else return up(a + 1);
}
int spin(int b)
{
  if (b < 0) return 0;
  else return spin(b + 1);
}
int mix(int x, int y)
{
  if (x <= 0) return dec(y);
  else return mix(x - 1, y + 1);
}
int main(int n)
{
  return mix(n, dec(n)) + up(0) + spin(-1);
}
)";

void expectIdentical(const std::string &Source, const std::string &Label) {
  AnalyzerConfig Seq;
  Seq.Threads = 1;
  AnalysisResult R1 = analyzeProgram(Source, Seq);

  for (unsigned Threads : {2u, 4u}) {
    AnalyzerConfig Par;
    Par.Threads = Threads;
    AnalysisResult RN = analyzeProgram(Source, Par);

    ASSERT_EQ(R1.Ok, RN.Ok) << Label << " threads=" << Threads;
    EXPECT_EQ(R1.str(), RN.str()) << Label << " threads=" << Threads;
    EXPECT_EQ(R1.Diagnostics, RN.Diagnostics) << Label << " threads="
                                              << Threads;
    EXPECT_EQ(R1.FuelUsed, RN.FuelUsed) << Label << " threads=" << Threads;
    EXPECT_EQ(R1.Methods.size(), RN.Methods.size())
        << Label << " threads=" << Threads;
    EXPECT_EQ(outcomeStr(R1.outcome()), outcomeStr(RN.outcome()))
        << Label << " threads=" << Threads;
  }
}

TEST(Determinism, MultiSccProgramByteIdentical) {
  expectIdentical(MultiSccSource, "multi-scc");
}

TEST(Determinism, RepeatedParallelRunsByteIdentical) {
  AnalyzerConfig Par;
  Par.Threads = 4;
  AnalysisResult A = analyzeProgram(MultiSccSource, Par);
  AnalysisResult B = analyzeProgram(MultiSccSource, Par);
  ASSERT_TRUE(A.Ok);
  EXPECT_EQ(A.str(), B.str());
  EXPECT_EQ(A.FuelUsed, B.FuelUsed);
}

TEST(Determinism, CorpusSampleByteIdentical) {
  // A bounded slice across the corpus categories keeps the test fast
  // while exercising heap programs, conditionals and non-termination.
  const std::vector<BenchProgram> &All = corpus();
  size_t Step = All.size() / 12;
  if (Step == 0)
    Step = 1;
  for (size_t I = 0; I < All.size(); I += Step)
    expectIdentical(All[I].Source, All[I].Name);
}

//===----------------------------------------------------------------------===//
// Batch determinism stress: the same corpus slice at 1/2/4/8 worker
// threads, with the shared global cache tier on and off, must produce
// byte-identical AnalysisResult renderings. This covers the whole
// two-tier contract at once: disjoint per-program fresh-variable
// blocks, deterministic end-of-program merges, and semantic
// transparency of both cache tiers.
//===----------------------------------------------------------------------===//

TEST(Determinism, BatchCorpusByteIdenticalAcrossThreadsAndTier) {
  // A deterministic cross-category stride keeps the stress affordable
  // while covering heap programs, conditionals and non-termination.
  const std::vector<BenchProgram> &All = corpus();
  std::vector<BatchItem> Items;
  size_t Step = All.size() / 24;
  if (Step == 0)
    Step = 1;
  for (size_t I = 0; I < All.size(); I += Step) {
    BatchItem It;
    It.Name = All[I].Name;
    It.Category = All[I].Category;
    It.Source = All[I].Source;
    It.Entry = All[I].Entry;
    Items.push_back(std::move(It));
  }

  std::string Base;
  {
    BatchOptions Opt;
    Opt.Threads = 1;
    Opt.GlobalTier = false;
    BatchAnalyzer BA(Opt);
    Base = BA.run(Items).renderOutcomes();
  }
  ASSERT_FALSE(Base.empty());

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    for (bool Tier : {false, true}) {
      if (Threads == 1 && !Tier)
        continue; // The baseline itself.
      BatchOptions Opt;
      Opt.Threads = Threads;
      Opt.GlobalTier = Tier;
      BatchAnalyzer BA(Opt);
      BatchResult R = BA.run(Items);
      EXPECT_EQ(Base, R.renderOutcomes())
          << "threads=" << Threads << " tier=" << (Tier ? "on" : "off");
    }
  }
}

TEST(Determinism, BatchWarmTierRunByteIdentical) {
  // A second run() on the SAME BatchAnalyzer starts with a warm global
  // tier (the server regime): results must not move.
  std::vector<BatchItem> Items;
  const std::vector<BenchProgram> &All = corpus();
  size_t Step = All.size() / 6;
  if (Step == 0)
    Step = 1;
  for (size_t I = 0; I < All.size(); I += Step) {
    BatchItem It;
    It.Name = All[I].Name;
    It.Category = All[I].Category;
    It.Source = All[I].Source;
    It.Entry = All[I].Entry;
    Items.push_back(std::move(It));
  }
  BatchOptions Opt;
  Opt.Threads = 4;
  BatchAnalyzer BA(Opt);
  std::string Cold = BA.run(Items).renderOutcomes();
  BatchResult Warm = BA.run(Items);
  EXPECT_EQ(Cold, Warm.renderOutcomes());
  EXPECT_GT(Warm.Usage.GlobalSatHits, 0u);
}

TEST(Determinism, MonolithicModeUnaffectedByThreads) {
  AnalyzerConfig C1, C4;
  C1.Modular = C4.Modular = false;
  C1.Threads = 1;
  C4.Threads = 4;
  AnalysisResult R1 = analyzeProgram(MultiSccSource, C1);
  AnalysisResult R4 = analyzeProgram(MultiSccSource, C4);
  ASSERT_TRUE(R1.Ok && R4.Ok);
  EXPECT_EQ(R1.str(), R4.str());
}

} // namespace
