//===- tests/BatchAnalyzerTest.cpp - batch engine unit tests ----*- C++ -*-===//
//
// BatchAnalyzer behavior: input-order results, agreement with
// standalone analyzeProgram verdicts, failed-program handling,
// per-category tables, the two-tier fuel accounting contract (queries
// answered by the global tier are not charged to the program that
// asked), and tier persistence across run() calls.
//
//===----------------------------------------------------------------------===//

#include "api/BatchAnalyzer.h"
#include "solver/GlobalCache.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

using namespace tnt;

namespace {

const char *TermSrc = R"(
int dec(int k)
{
  if (k <= 0) return 0;
  else return dec(k - 1);
}
int main(int n)
{
  return dec(n);
}
)";

const char *LoopSrc = R"(
int spin(int b)
{
  if (b < 0) return 0;
  else return spin(b + 1);
}
int main(int n)
{
  return spin(1);
}
)";

BatchItem item(const char *Name, const char *Cat, const char *Src) {
  BatchItem It;
  It.Name = Name;
  It.Category = Cat;
  It.Source = Src;
  return It;
}

} // namespace

TEST(BatchAnalyzer, ResultsInInputOrderAndMatchStandalone) {
  std::vector<BatchItem> Items = {item("t", "a", TermSrc),
                                  item("l", "b", LoopSrc),
                                  item("t2", "a", TermSrc)};
  BatchOptions Opt;
  Opt.Threads = 2;
  BatchAnalyzer BA(Opt);
  BatchResult R = BA.run(Items);

  ASSERT_EQ(R.Programs.size(), 3u);
  EXPECT_EQ(R.Programs[0].Name, "t");
  EXPECT_EQ(R.Programs[1].Name, "l");
  EXPECT_EQ(R.Programs[2].Name, "t2");

  // Verdicts agree with standalone runs (batch uses the deadline-free
  // batch config; these programs decide well inside any fuel bound).
  AnalysisResult T = analyzeProgram(TermSrc, batchProgramConfig());
  AnalysisResult L = analyzeProgram(LoopSrc, batchProgramConfig());
  EXPECT_EQ(R.Programs[0].Verdict, T.outcome());
  EXPECT_EQ(R.Programs[1].Verdict, L.outcome());
  EXPECT_EQ(R.Programs[2].Verdict, T.outcome());
  EXPECT_EQ(outcomeStr(R.Programs[0].Verdict), std::string("Y"));
  EXPECT_EQ(outcomeStr(R.Programs[1].Verdict), std::string("N"));
}

TEST(BatchAnalyzer, FailedProgramIsIsolated) {
  std::vector<BatchItem> Items = {item("bad", "x", "int main( {"),
                                  item("good", "x", TermSrc)};
  BatchAnalyzer BA;
  BatchResult R = BA.run(Items);
  ASSERT_EQ(R.Programs.size(), 2u);
  EXPECT_FALSE(R.Programs[0].Result.Ok);
  EXPECT_EQ(R.Programs[0].Verdict, Outcome::Unknown);
  EXPECT_TRUE(R.Programs[1].Result.Ok);
  EXPECT_EQ(R.Programs[1].Verdict, Outcome::Yes);
}

TEST(BatchAnalyzer, PerCategoryCountsAndTable) {
  std::vector<BatchItem> Items = {item("t", "alpha", TermSrc),
                                  item("l", "beta", LoopSrc),
                                  item("t2", "alpha", TermSrc)};
  BatchAnalyzer BA;
  BatchResult R = BA.run(Items);
  auto Cats = R.perCategory();
  ASSERT_EQ(Cats.size(), 2u);
  EXPECT_EQ(Cats[0].first, "alpha"); // First-appearance order.
  EXPECT_EQ(Cats[0].second.Programs, 2u);
  EXPECT_EQ(Cats[0].second.Yes, 2u);
  EXPECT_EQ(Cats[1].first, "beta");
  EXPECT_EQ(Cats[1].second.No, 1u);
  std::string Table = R.table();
  EXPECT_NE(Table.find("alpha"), std::string::npos);
  EXPECT_NE(Table.find("beta"), std::string::npos);
  EXPECT_NE(Table.find("Total"), std::string::npos);
}

TEST(BatchAnalyzer, GlobalTierSharesAcrossDuplicatePrograms) {
  // Two copies of one program: whichever copy the single worker runs
  // first pays cold; its twin answers a chunk of its queries from the
  // promoted entries. (The pool makes no ordering promise — input
  // order of RESULTS is guaranteed, execution order is not — so the
  // test identifies cold/warm by their tier-hit counters.)
  std::vector<BatchItem> Items = {item("p1", "c", TermSrc),
                                  item("p2", "c", TermSrc)};
  BatchOptions Opt;
  Opt.Threads = 1; // One worker: one copy fully finalizes first.
  BatchAnalyzer BA(Opt);
  BatchResult R = BA.run(Items);

  const AnalysisResult &A0 = R.Programs[0].Result;
  const AnalysisResult &A1 = R.Programs[1].Result;
  bool FirstIsCold = A0.SolverUsage.GlobalSatHits == 0;
  const AnalysisResult &Cold = FirstIsCold ? A0 : A1;
  const AnalysisResult &Warm = FirstIsCold ? A1 : A0;
  EXPECT_EQ(Cold.SolverUsage.GlobalSatHits, 0u);
  EXPECT_GT(Warm.SolverUsage.GlobalSatHits, 0u);
  EXPECT_GT(R.Global.SatHits, 0u);
  EXPECT_GT(R.Global.SatEntries, 0u);

  // Identical programs issue identical query sequences...
  EXPECT_EQ(Cold.SolverUsage.SatQueries, Warm.SolverUsage.SatQueries);
  // ...but the twin is charged less fuel: global-tier answers were
  // paid for by the cold copy (the no-double-count contract).
  EXPECT_EQ(Warm.FuelUsed, Warm.SolverUsage.fuelUsed());
  EXPECT_LT(Warm.FuelUsed, Cold.FuelUsed);
}

TEST(BatchAnalyzer, TierPersistsAcrossRuns) {
  std::vector<BatchItem> Items = {item("p", "c", TermSrc)};
  BatchAnalyzer BA;
  BatchResult Cold = BA.run(Items);
  EXPECT_EQ(Cold.Usage.GlobalSatHits, 0u);
  BatchResult Warm = BA.run(Items);
  EXPECT_GT(Warm.Usage.GlobalSatHits, 0u);
  // Same verdicts either way: the tier is semantically transparent.
  EXPECT_EQ(Cold.renderOutcomes(), Warm.renderOutcomes());
  EXPECT_LE(Warm.Usage.fuelUsed(), Cold.Usage.fuelUsed());
}

//===----------------------------------------------------------------------===//
// The fuel counter itself (AnalyzerConfig::FuelBudget satellite):
// SatQueries stays cache-transparent, GlobalSatHits records shared-tier
// answers, and fuelUsed() charges the difference.
//===----------------------------------------------------------------------===//

TEST(TwoTierFuel, GlobalHitsAreNotCharged) {
  Formula F = Formula::cmp(LinExpr::var(mkVar("btf_x")), CmpKind::Ge,
                           LinExpr(3));
  ConstraintConj Conj = {Constraint::make(LinExpr::var(mkVar("btf_x")),
                                          CmpKind::Ge, LinExpr(3))};

  GlobalSolverCache Tier;
  SolverContext Payer;
  Payer.attachGlobalTier(&Tier);
  EXPECT_EQ(Payer.isSatConj(Conj), Tri::True);
  SolverStats PS = Payer.stats();
  EXPECT_EQ(PS.SatQueries, 1u);
  EXPECT_EQ(PS.GlobalSatHits, 0u); // Tier was empty: Payer computed.
  EXPECT_EQ(PS.fuelUsed(), 1u);    // ...and is charged for it.
  Payer.promoteTo(Tier);
  EXPECT_EQ(Tier.satSize(), 1u);

  SolverContext Beneficiary;
  Beneficiary.attachGlobalTier(&Tier);
  EXPECT_EQ(Beneficiary.isSatConj(Conj), Tri::True);
  SolverStats BS = Beneficiary.stats();
  EXPECT_EQ(BS.SatQueries, 1u);     // The query still counts as issued...
  EXPECT_EQ(BS.GlobalSatHits, 1u);  // ...was answered by the tier...
  EXPECT_EQ(BS.fuelUsed(), 0u);     // ...and is not charged again.

  // A repeat is a LOCAL hit (installed on the tier hit): still charged,
  // exactly like any cache-transparent local hit.
  EXPECT_EQ(Beneficiary.isSatConj(Conj), Tri::True);
  BS = Beneficiary.stats();
  EXPECT_EQ(BS.SatQueries, 2u);
  EXPECT_EQ(BS.GlobalSatHits, 1u);
  EXPECT_EQ(BS.CacheHits, 1u);
  EXPECT_EQ(BS.fuelUsed(), 1u);

  // Merged stats keep the invariant (the analyzer's join path).
  SolverStats Merged = PS;
  Merged += BS;
  EXPECT_EQ(Merged.fuelUsed(), PS.fuelUsed() + BS.fuelUsed());
  (void)F;
}

TEST(TwoTierFuel, DisabledLocalCacheStillUsesTier) {
  ConstraintConj Conj = {Constraint::make(LinExpr::var(mkVar("btf_y")),
                                          CmpKind::Le, LinExpr(-1))};
  GlobalSolverCache Tier;
  SolverContext Payer; // Default caches; fills the tier.
  Payer.attachGlobalTier(&Tier);
  (void)Payer.isSatConj(Conj);
  Payer.promoteTo(Tier);

  SolverContext NoLocal(/*CacheCapacity=*/0, /*DnfMemoCapacity=*/0);
  NoLocal.attachGlobalTier(&Tier);
  (void)NoLocal.isSatConj(Conj);
  SolverStats S = NoLocal.stats();
  EXPECT_EQ(S.SatQueries, 1u);
  EXPECT_EQ(S.GlobalSatHits, 1u);
  // A disabled local cache records no lookups (the "disabled reads as
  // n/a, not 0%" contract) — only the tier hit is visible.
  EXPECT_EQ(S.CacheHits + S.CacheMisses, 0u);
  EXPECT_EQ(S.fuelUsed(), 0u);
}

TEST(TwoTierFuel, PerProgramBudgetHonorsTierHits) {
  // A batch of twins where the budget is tight enough that the cold
  // copy exceeds it, while the warm copy (fed by the tier) stays
  // inside — only because tier hits are not charged against the
  // per-program budget.
  std::vector<BatchItem> Items = {item("a", "c", TermSrc),
                                  item("b", "c", TermSrc)};
  BatchOptions Opt;
  Opt.Threads = 1;
  BatchAnalyzer Probe(Opt);
  BatchResult Free = Probe.run(Items);
  uint64_t F0 = Free.Programs[0].Result.FuelUsed;
  uint64_t F1 = Free.Programs[1].Result.FuelUsed;
  uint64_t ColdFuel = std::max(F0, F1), WarmFuel = std::min(F0, F1);
  ASSERT_GT(ColdFuel, WarmFuel);

  BatchOptions Tight;
  Tight.Threads = 1;
  Tight.Program.FuelBudget = (ColdFuel + WarmFuel) / 2;
  BatchAnalyzer BA(Tight);
  BatchResult R = BA.run(Items);
  Outcome V0 = R.Programs[0].Verdict, V1 = R.Programs[1].Verdict;
  // Exactly one copy — the one that ran cold — is over budget, and
  // the over-budget one is the one with no tier hits.
  ASSERT_NE(V0 == Outcome::Timeout, V1 == Outcome::Timeout);
  const AnalysisResult &TimedOut = V0 == Outcome::Timeout
                                       ? R.Programs[0].Result
                                       : R.Programs[1].Result;
  const AnalysisResult &Finished = V0 == Outcome::Timeout
                                       ? R.Programs[1].Result
                                       : R.Programs[0].Result;
  EXPECT_EQ(TimedOut.SolverUsage.GlobalSatHits, 0u);
  EXPECT_GT(Finished.SolverUsage.GlobalSatHits, 0u);
  EXPECT_EQ(Finished.outcome(), Outcome::Yes);
}
