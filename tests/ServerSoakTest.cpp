//===- tests/ServerSoakTest.cpp - long-lived server soak --------*- C++ -*-===//
//
// The analysis-server regression fence for the long-lived regime:
//
//  * Soak: >= 1000 requests (corpus programs cycled with
//    fresh-variable-heavy variants) through an in-process server.
//    EVERY response must be byte-identical to a fresh single-program
//    analyzeProgram run of the same source — the tier and the epoch
//    machinery must be unobservable in responses — and the interned
//    node counts plus the arena-bytes RSS proxy must stay bounded
//    across epochs (no monotone growth: reclamation plus tier rotation
//    give a steady state).
//
//  * Protocol: stats/shutdown verbs, path requests, malformed input,
//    blank lines.
//
// The soak runs the server strictly in-process (handleLine) so the
// fresh-run comparisons interleave deterministically with the server's
// epochs; the ctest server-smoke label drives the same protocol through
// the real stdin/stdout loop via `hiptnt --serve-smoke`.
//
//===----------------------------------------------------------------------===//

#include "api/AnalysisServer.h"
#include "arith/Intern.h"
#include "arith/Var.h"
#include "support/Json.h"
#include "workloads/Corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace tnt;

TEST(ServerSoak, ThousandRequestsByteIdenticalAndBounded) {
  ServerOptions SO;
  SO.ReclaimEvery = 50;
  // A tiny tier so capacity rotation — which is what bounds the
  // retained root set on an unbounded stream — actually fires inside
  // the soak horizon. Tinier than it used to be: per-request sessions
  // mint POSITIONAL ids, so the variant requests' structurally
  // distinct spellings alias to identical interned keys and the tier's
  // distinct-entry population is now per-corpus, not per-request.
  SO.GlobalSatCapacity = 1u << 6;
  SO.GlobalDnfCapacity = 1u << 4;
  AnalysisServer Server(SO);

  std::vector<BatchItem> Items = corpusBatchItems(25);
  ASSERT_EQ(Items.size(), 25u);

  constexpr unsigned N = 1000;
  std::vector<size_t> FormulaSamples, ConstraintSamples, ArenaSamples;
  for (unsigned I = 0; I < N; ++I) {
    // Cycled corpus program with a request-unique fresh-variable-heavy
    // helper: every request mints interned terms no other request
    // shares, i.e. the garbage reclamation exists to collect.
    std::string Src = soakVariantSource(Items[I % Items.size()].Source, I);
    std::string Line = Server.handleLine(soakRequestJson(I, Src));
    std::optional<json::Value> Resp = json::parse(Line);
    ASSERT_TRUE(Resp && Resp->isObject()) << Line;
    const json::Value *Ok = Resp->field("ok");
    ASSERT_TRUE(Ok != nullptr && Ok->asBool()) << "request " << I << ": "
                                               << Line;
    {
      // Fresh-context reference: same source, same config, no server,
      // no tier. Byte-identity is the whole contract — the response
      // may not depend on how warm the tier is or how many epochs have
      // passed. The server runs each request in a virgin VarPool
      // session, so the reference runs in one too; a bare
      // analyzeProgram would carry pool history across the comparator
      // runs themselves. The reference result is scoped to this
      // iteration so no Formula handle of it survives into a later
      // epoch.
      VarPool::Session Lease;
      VarPool::SessionScope Active(Lease);
      AnalysisResult Fresh = analyzeProgram(Src, SO.Program);
      ASSERT_TRUE(Fresh.Ok) << Fresh.Diagnostics;
      const json::Value *Output = Resp->field("output");
      const json::Value *Verdict = Resp->field("verdict");
      ASSERT_TRUE(Output != nullptr && Verdict != nullptr) << Line;
      ASSERT_EQ(Output->asString(), Fresh.str()) << "request " << I;
      ASSERT_EQ(Verdict->asString(),
                std::string(outcomeStr(Fresh.outcome("main"))))
          << "request " << I;
    }
    if ((I + 1) % SO.ReclaimEvery == 0) {
      // Epoch boundary (the reclaim ran inside handleLine above):
      // sample the interned-term counts and the RSS proxy.
      ArithIntern &In = ArithIntern::global();
      FormulaSamples.push_back(In.formulaCount());
      ConstraintSamples.push_back(In.constraintCount());
      ArenaSamples.push_back(In.arenaBytes());
    }
  }

  ServerStats S = Server.stats();
  EXPECT_EQ(S.Requests, N);
  EXPECT_EQ(S.Errors, 0u);
  EXPECT_EQ(S.Reclaims, N / SO.ReclaimEvery);
  EXPECT_GT(S.LastReclaim.dropped(), 0u) << "reclamation did no work";
  EXPECT_GT(S.Global.SatHits, 0u) << "the warm tier never fired";
  EXPECT_GT(S.Global.SatRotations, 0u)
      << "tier never rotated; the bounded-footprint claim is untested";

  // Bounded across epochs: the shared peak-to-peak fence
  // (soakSamplesBounded — same predicate the server-smoke CI gate
  // uses). Warmup — the epochs before the first rotation, during
  // which the retained root set legitimately grows — is excluded;
  // past it, the late peak must stay within 25% of the early peak.
  // Without reclamation every sample would grow by a full epoch's
  // garbage (~20k entries here) and the fence would blow immediately.
  auto bounded = [](const std::vector<size_t> &Samples, const char *What) {
    ASSERT_GE(Samples.size(), SoakMinSamples);
    EXPECT_TRUE(soakSamplesBounded(Samples))
        << What << " kept growing across epochs: "
        << ::testing::PrintToString(Samples);
  };
  bounded(FormulaSamples, "interned formula count");
  bounded(ConstraintSamples, "interned constraint count");
  bounded(ArenaSamples, "arena bytes");
}

TEST(ServerSoak, UniqueIdentifiersLeaveSharedPoolFlat) {
  // The VarPool spelling-growth fence (the second half of the
  // long-lived story): ArithIntern reclamation bounds formula nodes,
  // and per-request SESSIONS bound the pool — every request-minted
  // spelling lives in the request's private session tables and dies
  // with them. A request stream whose programs each use IDENTIFIERS no
  // other request shares therefore leaves the shared pool's size
  // EXACTLY unchanged; before sessions, every request grew it
  // permanently (names are never unmapped from the shared tables), the
  // unbounded growth this test pins the fix for.
  ServerOptions SO;
  SO.ReclaimEvery = 25;
  AnalysisServer Server(SO);

  const size_t PoolBefore = VarPool::get().size();
  constexpr unsigned N = 200;
  std::vector<size_t> Samples;
  for (unsigned I = 0; I < N; ++I) {
    // Request-unique parameter and callee names: a fresh process would
    // intern two new spellings per request.
    std::string V = "v" + std::to_string(I), F = "dec" + std::to_string(I);
    std::string Src = "int " + F + "(int " + V + ") { if (" + V +
                      " <= 0) return 0; else return " + F + "(" + V +
                      " - 1); } int main(int n) { return " + F + "(n); }";
    std::string Line = Server.handleLine(soakRequestJson(I, Src));
    std::optional<json::Value> Resp = json::parse(Line);
    ASSERT_TRUE(Resp && Resp->isObject()) << Line;
    ASSERT_TRUE(Resp->field("ok")->asBool()) << Line;
    if ((I + 1) % SO.ReclaimEvery == 0)
      Samples.push_back(VarPool::get().size());
  }
  EXPECT_EQ(VarPool::get().size(), PoolBefore)
      << "request-local spellings leaked into the shared pool";
  for (size_t S : Samples)
    EXPECT_EQ(S, PoolBefore);
  EXPECT_EQ(Server.stats().Errors, 0u);
}

TEST(ServerProtocol, StatsShutdownAndErrors) {
  ServerOptions SO;
  SO.ReclaimEvery = 2;
  AnalysisServer Server(SO);

  // Malformed JSON.
  std::optional<json::Value> R =
      json::parse(Server.handleLine("{not json"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());

  // Not an object.
  R = json::parse(Server.handleLine("[1,2]"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());

  // Missing payload.
  R = json::parse(Server.handleLine("{\"id\":7}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());
  EXPECT_EQ(R->field("id")->rawNumber(), "7");

  // Blank lines produce no response.
  EXPECT_EQ(Server.handleLine(""), "");
  EXPECT_EQ(Server.handleLine("   \t"), "");

  // Number lexemes strtod tolerates but JSON forbids ("01", "1.") are
  // rejected at parse time — the raw id lexeme is echoed verbatim into
  // responses, so accepting them would emit invalid response JSON.
  R = json::parse(Server.handleLine("{\"id\":01,\"verb\":\"stats\"}"));
  ASSERT_TRUE(R.has_value()); // The response itself is valid JSON...
  EXPECT_FALSE(R->field("ok")->asBool()); // ...and reports the error.
  R = json::parse(Server.handleLine("{\"id\":1.,\"verb\":\"stats\"}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());

  // A parse-broken program is an error response, not a crash.
  R = json::parse(Server.handleLine(
      "{\"id\":8,\"program\":\"int main( {\"}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());
  EXPECT_TRUE(R->field("error") != nullptr);

  // A mistyped verb is a type error, not "unknown verb ''".
  R = json::parse(Server.handleLine("{\"id\":5,\"verb\":123}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());
  EXPECT_NE(R->field("error")->asString().find("must be a string"),
            std::string::npos);

  // String ids echo back quoted.
  R = json::parse(Server.handleLine("{\"id\":\"q1\",\"verb\":\"stats\"}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->field("ok")->asBool());
  EXPECT_EQ(R->field("id")->asString(), "q1");
  EXPECT_TRUE(R->field("stats") != nullptr);

  // Shutdown flips the flag and acks.
  R = json::parse(Server.handleLine("{\"id\":9,\"verb\":\"shutdown\"}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->field("ok")->asBool());
  EXPECT_TRUE(Server.shutdownRequested());
}

TEST(ServerProtocol, ConcurrentReclaimersStandDown) {
  // Reclamation sweeps everything outside the reclaiming server's own
  // tier, so it is only sound for a sole owner: while ANY other
  // GlobalSolverCache is alive — a sibling reclaiming server, a
  // non-reclaiming one, or a bare tier (as a BatchAnalyzer would own)
  // — the server must not reclaim, or it would free interned pointers
  // the other tier still keys on. Once the siblings die, reclamation
  // resumes.
  const char *Src = "int main(int n)\n{\n  return n;\n}\n";
  ServerOptions SO;
  SO.ReclaimEvery = 1; // Reclaim after every request — when allowed.
  AnalysisServer A(SO);
  {
    AnalysisServer B(SO);
    (void)A.handleLine(soakRequestJson(1, Src));
    (void)B.handleLine(soakRequestJson(1, Src));
    EXPECT_EQ(A.stats().Reclaims, 0u);
    EXPECT_EQ(B.stats().Reclaims, 0u);
  }
  {
    // A NON-reclaiming sibling's tier is just as much a pointer owner.
    ServerOptions NoReclaim;
    NoReclaim.ReclaimEvery = 0;
    AnalysisServer C(NoReclaim);
    (void)A.handleLine(soakRequestJson(2, Src));
    EXPECT_EQ(A.stats().Reclaims, 0u);
  }
  {
    // So is a bare tier with no server around it.
    GlobalSolverCache Bare(16, 16);
    (void)A.handleLine(soakRequestJson(3, Src));
    EXPECT_EQ(A.stats().Reclaims, 0u);
  }
  (void)A.handleLine(soakRequestJson(4, Src));
  EXPECT_EQ(A.stats().Reclaims, 1u);
}

TEST(ServerProtocol, ServeLoopAndPathRequests) {
  // Drive the real serve() stream loop, including a {"path": ...}
  // request against a file on disk.
  std::string Src = "int main(int n)\n{\n  if (n <= 0) return 0;\n"
                    "  else return main(n - 1);\n}\n";
  std::string Path = ::testing::TempDir() + "server_soak_prog.t";
  {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good());
    Out << Src;
  }

  ServerOptions SO;
  AnalysisServer Server(SO);
  std::istringstream In(soakRequestJson(1, Src) + "\n" +
                        "{\"id\":2,\"path\":" + json::quoted(Path) + "}\n" +
                        "\n" // blank line: skipped
                        "{\"id\":3,\"verb\":\"shutdown\"}\n" +
                        soakRequestJson(4, Src) + "\n"); // after shutdown
  std::ostringstream Out;
  EXPECT_EQ(Server.serve(In, Out), 0);

  std::vector<json::Value> Lines;
  std::istringstream Responses(Out.str());
  std::string Line;
  while (std::getline(Responses, Line)) {
    std::optional<json::Value> V = json::parse(Line);
    ASSERT_TRUE(V.has_value()) << Line;
    Lines.push_back(std::move(*V));
  }
  // Three responses: program, path-program, shutdown ack. Request 4
  // was never read.
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_TRUE(Lines[0].field("ok")->asBool());
  EXPECT_TRUE(Lines[1].field("ok")->asBool());
  // Inline and path requests of the same source produce identical
  // analysis output.
  EXPECT_EQ(Lines[0].field("output")->asString(),
            Lines[1].field("output")->asString());
  EXPECT_EQ(Lines[0].field("verdict")->asString(), "Y");
  EXPECT_TRUE(Lines[2].field("shutdown")->asBool());

  // Path requests can be disabled.
  ServerOptions NoPaths;
  NoPaths.AllowPaths = false;
  AnalysisServer Locked(NoPaths);
  std::optional<json::Value> R = json::parse(
      Locked.handleLine("{\"id\":1,\"path\":" + json::quoted(Path) + "}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());
}

//===----------------------------------------------------------------------===//
// The analyze-batch verb: an array of program requests answered in
// request order within one response line, each entry byte-identical to
// the corresponding single-program response body.
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, AnalyzeBatchVerb) {
  const char *TermSrc =
      "int dec(int k) { if (k <= 0) return 0; else return dec(k - 1); } "
      "int main(int n) { return dec(n); }";
  const char *LoopSrc =
      "int spin(int b) { if (b < 0) return 0; else return spin(b + 1); } "
      "int main(int n) { return spin(1); }";

  AnalysisServer Server{ServerOptions{}};
  // Reference single-program responses FIRST (ids differ; bodies are
  // what must agree).
  std::optional<json::Value> Term = json::parse(Server.handleLine(
      "{\"id\":100,\"program\":" + json::quoted(TermSrc) + "}"));
  std::optional<json::Value> Loop = json::parse(Server.handleLine(
      "{\"id\":101,\"program\":" + json::quoted(LoopSrc) + "}"));
  ASSERT_TRUE(Term && Loop);

  std::string Batch =
      "{\"id\":7,\"verb\":\"analyze-batch\",\"programs\":["
      "{\"program\":" + json::quoted(LoopSrc) + "},"
      "{\"program\":\"int main( {\"},"
      "{\"program\":" + json::quoted(TermSrc) + ",\"entry\":\"dec\"},"
      "{\"program\":" + json::quoted(TermSrc) + "}]}";
  std::optional<json::Value> R = json::parse(Server.handleLine(Batch));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->field("id")->rawNumber(), "7");
  EXPECT_TRUE(R->field("ok")->asBool());
  const json::Value *Results = R->field("results");
  ASSERT_TRUE(Results != nullptr && Results->isArray());
  ASSERT_EQ(Results->elements().size(), 4u);

  // Answered in request order: loop, error, term-with-entry, term.
  const json::Value &R0 = Results->elements()[0];
  EXPECT_TRUE(R0.field("ok")->asBool());
  EXPECT_EQ(R0.field("verdict")->asString(), "N");
  EXPECT_EQ(R0.field("output")->asString(),
            Loop->field("output")->asString());

  const json::Value &R1 = Results->elements()[1];
  EXPECT_FALSE(R1.field("ok")->asBool());
  EXPECT_TRUE(R1.field("error") != nullptr);

  const json::Value &R2 = Results->elements()[2];
  EXPECT_TRUE(R2.field("ok")->asBool());
  EXPECT_EQ(R2.field("entry")->asString(), "dec");
  EXPECT_EQ(R2.field("verdict")->asString(), "Y");

  const json::Value &R3 = Results->elements()[3];
  EXPECT_TRUE(R3.field("ok")->asBool());
  EXPECT_EQ(R3.field("entry")->asString(), "main");
  EXPECT_EQ(R3.field("verdict")->asString(), "Y");
  EXPECT_EQ(R3.field("output")->asString(),
            Term->field("output")->asString());

  // Each batch element counts as a program request (reclaim cadence
  // and stats treat them exactly like standalone requests).
  EXPECT_EQ(Server.stats().Requests, 2u + 4u); // 2 singles + 4 batch
                                               // elements (the parse
                                               // failure counts too).

  // Protocol errors: missing / mistyped programs array.
  R = json::parse(
      Server.handleLine("{\"id\":8,\"verb\":\"analyze-batch\"}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());
  R = json::parse(Server.handleLine(
      "{\"id\":9,\"verb\":\"analyze-batch\",\"programs\":3}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->field("ok")->asBool());

  // An empty batch is a valid request with an empty results array.
  R = json::parse(Server.handleLine(
      "{\"id\":10,\"verb\":\"analyze-batch\",\"programs\":[]}"));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->field("ok")->asBool());
  EXPECT_TRUE(R->field("results")->isArray());
  EXPECT_EQ(R->field("results")->elements().size(), 0u);

  // Batch elements that are not objects error in place, preserving
  // positions.
  R = json::parse(Server.handleLine(
      "{\"id\":11,\"verb\":\"analyze-batch\",\"programs\":[42,"
      "{\"program\":" + json::quoted(TermSrc) + "}]}"));
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->field("results")->elements().size(), 2u);
  EXPECT_FALSE(R->field("results")->elements()[0].field("ok")->asBool());
  EXPECT_TRUE(R->field("results")->elements()[1].field("ok")->asBool());
}
